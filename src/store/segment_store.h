// Incremental, crash-consistent VP persistence: sealed shard segments +
// atomically-published manifests.
//
// The legacy VMDB container (store/vp_store) rewrites every byte of the
// database on each save — O(database) I/O per checkpoint, a full reparse
// on restart, and no safe point if the process dies mid-write. A deployed
// ViewMap service checkpoints continuously over weeks of VP history
// (§2: dashcam retention is 2–3 weeks), so persistence must be
// *incremental* and *crash-consistent*. This module stores a database as:
//
//   dir/
//     seg-<digest16 hex>.vseg   one sealed segment per unit-time shard,
//                               named by its content digest
//     manifest-<seq hex>.vman   one small root per checkpoint: the list
//                               of (unit-time, digest, counts) it is
//                               composed of, plus the trusted clock
//     *.tmp                     in-flight writes (crash debris; GC'd)
//
// Segment file:   "VSEG" | u32 version | content | SHA-256(content)
//   content    =  unit_time i64 | vp_count u64 | trusted_count u64 |
//                 vp_count × ViewProfile payload (ascending id) |
//                 trusted_count × Id16 (ascending)
// Manifest file:  "VMAN" | u32 version | u64 sequence | i64 trusted_clock |
//                 u64 shard_count | shard_count × entry | SHA-256(above)
//   entry      =  unit_time i64 | vp_count u64 | trusted_count u64 |
//                 Hash32 content digest
//
// Incrementality: a checkpoint walks the snapshot's shards and asks each
// for its content digest (cached on the shard — an untouched shard
// answers without re-serializing a byte, see TimeShard::content_digest).
// A digest whose segment file already exists is *sealed by reference*:
// the new manifest lists it, nothing is rewritten. Only new/changed
// shards cost serialization + I/O, so checkpoint cost is O(churn), not
// O(database).
//
// Crash consistency: every file is written to a .tmp sibling, fsynced,
// and atomically renamed into its final name — a file under a final name
// is always complete. Segments are content-addressed and therefore never
// overwritten in place; the manifest for sequence N is a NEW file, so no
// previously-sealed checkpoint is ever touched. The manifest rename is
// the commit point: a crash at any byte offset before it leaves every
// older manifest (and every segment it references — GC keeps them, see
// below) intact, so recovery lands exactly on the last sealed
// checkpoint. Recovery walks manifests newest-first and returns the
// first that validates end to end (manifest checksum, per-segment magic/
// digest/count checks, per-profile structural screen); a damaged newest
// checkpoint falls back to its predecessor instead of crashing or
// loading malformed VPs.
//
// GC: after each checkpoint (or via gc()), the newest `keep_manifests`
// manifests survive together with every segment any of them references;
// older manifests, unreferenced segments, and stale .tmp files are
// unlinked. Retention eviction therefore works across restarts for free:
// an evicted shard simply stops being referenced, and its segment is
// reclaimed once the last manifest naming it rotates out. If a kept
// manifest cannot be parsed, segment GC is skipped for that round (its
// references are unknown — deleting would turn one corrupt file into
// data loss).
//
// Concurrency contract: checkpoint()/gc() mutate the directory and must
// be driven by one thread at a time (the same single-caller discipline
// as ViewMapService::ingest_uploads()); the snapshot argument makes a
// checkpoint fully concurrent with live ingest, eviction, and
// investigations. recover() only reads and is safe from any thread.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "index/db_snapshot.h"
#include "system/vp_database.h"

namespace viewmap::obs {
class MetricsRegistry;  // obs/metrics.h
class Counter;
class Histogram;
}  // namespace viewmap::obs

namespace viewmap::store {

inline constexpr std::uint32_t kSegmentFormatVersion = 1;
inline constexpr std::uint32_t kManifestFormatVersion = 1;

/// One durable filesystem mutation a checkpoint performed, in order.
/// Test instrumentation (SegmentStoreConfig::op_log): the fault-injection
/// harness replays every prefix of this sequence — truncating the write
/// it lands inside — to prove recovery from a crash at any byte offset.
/// Paths are file names relative to the store directory, so a recorded
/// sequence can be replayed into a scratch directory.
struct RecordedOp {
  enum class Kind { kWriteFile, kRename, kRemove };
  Kind kind = Kind::kWriteFile;
  std::string name;                 ///< target (write/remove) or rename source
  std::string to;                   ///< rename destination
  std::vector<std::uint8_t> bytes;  ///< full contents written (kWriteFile)
};

struct SegmentStoreConfig {
  /// How many checkpoint manifests (newest-first) survive GC — the
  /// recovery fallback depth. Minimum 1; the default keeps the sealed
  /// predecessor so a corrupted newest checkpoint never strands the
  /// store.
  std::size_t keep_manifests = 2;
  /// fsync file data before each rename and the directory after — the
  /// barrier that makes the recorded operation order the on-disk order.
  /// Off only in tests/benches that model durability logically.
  bool fsync = true;
  /// Test instrumentation: when set, every durable mutation is appended
  /// here in execution order. Not owned.
  std::vector<RecordedOp>* op_log = nullptr;
  /// When set, the store publishes checkpoint/recovery counters and
  /// fsync latency here (see src/obs/README.md for the names). Null
  /// disables instrumentation; ViewMapService wires its own registry in
  /// lazily via adopt_metrics(). Not owned; must outlive the store.
  obs::MetricsRegistry* metrics = nullptr;
};

struct CheckpointStats {
  std::uint64_t sequence = 0;        ///< manifest sequence number sealed
  std::size_t shards_total = 0;      ///< shards in the pinned snapshot
  std::size_t segments_written = 0;  ///< new/changed shards serialized
  std::size_t segments_reused = 0;   ///< sealed by reference, zero I/O
  std::uint64_t bytes_written = 0;   ///< segment + manifest bytes this call
  std::uint64_t segment_bytes_total = 0;  ///< full size of all referenced segments
  std::size_t files_removed = 0;     ///< GC'd manifests/segments/temps
};

struct RecoveryStats {
  std::uint64_t sequence = 0;        ///< manifest the store recovered to
  std::size_t manifests_tried = 0;   ///< >1 ⇔ fallback happened
  std::size_t segments_loaded = 0;
  std::uint64_t manifest_profiles = 0;  ///< VP count the manifest promises
  std::size_t profiles_loaded = 0;
  std::size_t profiles_rejected = 0;  ///< failed the structural screen
  std::size_t trusted_marked = 0;
};

class SegmentStore {
 public:
  explicit SegmentStore(std::string dir, SegmentStoreConfig cfg = {});

  /// Seals one checkpoint of the pinned snapshot: writes segments for
  /// new/changed shards only, reuses sealed segments by digest, then
  /// atomically publishes the manifest and garbage-collects. Throws
  /// std::runtime_error on I/O failure — the store is then still exactly
  /// its previous checkpoint (nothing final was overwritten).
  CheckpointStats checkpoint(const index::DbSnapshot& snap);

  /// Loads the newest recoverable checkpoint into a fresh database
  /// (optionally with the caller's upload policy + index config, so
  /// retention/screening behave identically after a restart). A store
  /// with no manifest at all — including a directory never created —
  /// yields an empty database; a directory that exists but cannot be
  /// listed, or whose manifests are all damaged, throws
  /// std::runtime_error (an I/O failure must never masquerade as a
  /// fresh store). Damaged newest checkpoints fall back
  /// (RecoveryStats::manifests_tried > 1).
  [[nodiscard]] sys::VpDatabase recover(RecoveryStats* stats = nullptr) const;
  [[nodiscard]] sys::VpDatabase recover(vp::VpUploadPolicy policy,
                                        index::TimelineConfig index_cfg,
                                        RecoveryStats* stats = nullptr) const;

  /// Point-in-time restore: loads exactly the checkpoint sealed under
  /// manifest `sequence` — the daemon's "restart from a chosen
  /// checkpoint" path, and the investigation path for historical
  /// database states (run with keep_manifests > 2 to retain history).
  /// Unlike the newest-first recover() above this never falls back: a
  /// missing or damaged named manifest throws std::runtime_error,
  /// because silently landing on a different checkpoint than the one the
  /// operator named would defeat the point of naming it.
  [[nodiscard]] sys::VpDatabase recover(std::uint64_t sequence,
                                        RecoveryStats* stats = nullptr) const;
  [[nodiscard]] sys::VpDatabase recover(std::uint64_t sequence,
                                        vp::VpUploadPolicy policy,
                                        index::TimelineConfig index_cfg,
                                        RecoveryStats* stats = nullptr) const;

  /// Manifest sequences present on disk, ascending — the menu a
  /// point-in-time recover(sequence) picks from. Presence does not imply
  /// loadability (that is recover's job to verify).
  [[nodiscard]] std::vector<std::uint64_t> manifest_sequences() const;

  /// Newest manifest sequence present (0 = none). Scans the directory.
  [[nodiscard]] std::uint64_t latest_sequence() const;

  /// Removes everything the retention rules above say is dead. Returns
  /// files unlinked. checkpoint() calls this automatically.
  std::size_t gc();

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] const SegmentStoreConfig& config() const noexcept { return cfg_; }

  /// Late metrics wiring: publishes this store's metrics into `registry`
  /// unless a registry is already wired (then a no-op — first wins, so a
  /// store shared between services keeps one consistent set of
  /// counters). ViewMapService calls this on every checkpoint()/
  /// restore_from(), which is why it is const: the handles are caching
  /// state, not store content. Call from the single control thread that
  /// drives checkpoint()/recover() — it is not synchronized.
  void adopt_metrics(obs::MetricsRegistry* registry) const;

  [[nodiscard]] static std::string segment_file_name(const Hash32& digest);
  [[nodiscard]] static std::string manifest_file_name(std::uint64_t sequence);

 private:
  struct ManifestEntry {
    TimeSec unit_time = 0;
    std::uint64_t vp_count = 0;
    std::uint64_t trusted_count = 0;
    Hash32 digest{};
  };
  struct Manifest {
    std::uint64_t sequence = 0;
    TimeSec trusted_clock = 0;
    std::vector<ManifestEntry> entries;
  };

  /// Manifest sequences present on disk, descending.
  [[nodiscard]] std::vector<std::uint64_t> list_manifests_desc() const;
  /// Parses + checksum-validates a manifest file. Throws on any damage.
  [[nodiscard]] Manifest read_manifest(std::uint64_t sequence) const;
  /// Loads every segment of `manifest` into `db`. Throws on any segment
  /// damage (missing file, bad magic/version, digest or count mismatch).
  void load_segments(const Manifest& manifest, sys::VpDatabase& db,
                     RecoveryStats& stats) const;
  [[nodiscard]] sys::VpDatabase recover_impl(vp::VpUploadPolicy policy,
                                             index::TimelineConfig index_cfg,
                                             RecoveryStats* stats) const;
  /// Parses + fully validates exactly one checkpoint into a fresh
  /// database. Throws on any damage; shared by the fallback walk and the
  /// point-in-time recover(sequence).
  [[nodiscard]] sys::VpDatabase load_checkpoint(std::uint64_t sequence,
                                                vp::VpUploadPolicy policy,
                                                index::TimelineConfig index_cfg,
                                                RecoveryStats& stats) const;

  void write_file(const std::string& name, std::span<const std::uint8_t> bytes);
  void rename_file(const std::string& from, const std::string& to);
  bool remove_file(const std::string& name);
  void fsync_dir() const;
  [[nodiscard]] std::string full_path(const std::string& name) const;

  /// Registry handles — all null until a registry is wired (config or
  /// adopt_metrics). Mutable: they cache where to report, they are not
  /// store content, and recovery instrumentation runs in const methods.
  struct StoreMetrics {
    obs::Counter* checkpoints = nullptr;
    obs::Counter* bytes_written = nullptr;
    obs::Counter* segments_written = nullptr;
    obs::Counter* segments_reused = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Counter* recovered_profiles = nullptr;
    obs::Histogram* checkpoint_us = nullptr;
    obs::Histogram* fsync_us = nullptr;
    obs::Histogram* recover_us = nullptr;
  };

  std::string dir_;
  SegmentStoreConfig cfg_;
  mutable StoreMetrics m_;
};

}  // namespace viewmap::store
