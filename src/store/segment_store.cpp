#include "store/segment_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/bytes.h"
#include "common/failpoint.h"
#include "common/hex.h"
#include "crypto/crc32c.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace viewmap::store {

namespace fs = std::filesystem;

namespace {

constexpr std::array<std::uint8_t, 4> kSegmentMagic{'V', 'S', 'E', 'G'};
constexpr std::array<std::uint8_t, 4> kSegmentMagicV2{'V', 'S', 'G', '2'};
constexpr std::array<std::uint8_t, 4> kManifestMagic{'V', 'M', 'A', 'N'};
constexpr const char* kSegmentSuffix = ".vseg";
constexpr const char* kSegmentSuffixV2 = ".vseg2";
constexpr const char* kManifestPrefix = "manifest-";
constexpr const char* kManifestSuffix = ".vman";
constexpr const char* kTempSuffix = ".tmp";

/// v2 fixed overhead: magic + version + (unit, vp_count, trusted_count)
/// header + arena_len before the table; digest + CRC32C after the data.
constexpr std::size_t kV2Prefix = 4 + 4 + 24 + 8;
constexpr std::size_t kV2Trailer = 32 + 4;
constexpr std::size_t kV2TableEntry = 8 + 4;

/// Bounds-checked little-endian reader over an in-memory file image.
/// Deliberately not common/bytes.h's ByteReader: recovery needs
/// position() (the checksum covers an exact byte prefix), magic checks,
/// and errors naming the damaged file AND byte offset — "this checkpoint
/// is not loadable" must be attributable, never silent garbage.
class Reader {
 public:
  Reader(std::span<const std::uint8_t> data, const std::string& what)
      : data_(data), what_(what) {}

  [[nodiscard]] std::span<const std::uint8_t> take(std::size_t n) {
    if (data_.size() - pos_ < n)
      throw std::runtime_error("segment_store: truncated " + what_ +
                               " at offset " + std::to_string(pos_) + " (need " +
                               std::to_string(n) + " bytes, have " +
                               std::to_string(data_.size() - pos_) + ")");
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  [[nodiscard]] std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
    return v;
  }
  [[nodiscard]] Hash32 hash32() {
    const auto b = take(32);
    Hash32 h;
    std::copy(b.begin(), b.end(), h.bytes.begin());
    return h;
  }
  void expect_magic(const std::array<std::uint8_t, 4>& magic, const char* kind) {
    const std::size_t at = pos_;
    const auto b = take(4);
    if (std::memcmp(b.data(), magic.data(), 4) != 0)
      throw std::runtime_error(std::string("segment_store: bad ") + kind +
                               " magic in " + what_ + " at offset " +
                               std::to_string(at));
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::string what_;
};

/// Bulk whole-file read. open/fstat/read into one pre-sized buffer: at
/// recovery sizes (a 1M-VP checkpoint is ~4.6 GB of segments) this is
/// the difference between an I/O-bound restart and a CPU-bound one —
/// the istreambuf_iterator it replaced spent ~50 s of an 80 s restart
/// feeding bytes one at a time.
std::vector<std::uint8_t> read_file(const std::string& path) {
  if (const int err = failpoint::inject("store.read"); err != 0)
    throw StoreError("segment_store: cannot open " + path, err);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw StoreError("segment_store: cannot open " + path, errno);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    throw std::runtime_error("segment_store: cannot stat " + path);
  }
  std::vector<std::uint8_t> out(static_cast<std::size_t>(st.st_size));
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::read(fd, out.data() + done, out.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("segment_store: cannot read " + path);
    }
    if (n == 0) break;  // file shrank under us; the size checks will name it
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
  out.resize(done);
  return out;
}

Hash32 sha256_prefix(std::span<const std::uint8_t> data, std::size_t len) {
  crypto::Sha256 hasher;
  hasher.update(data.subspan(0, len));
  return hasher.finish();
}

std::uint64_t us_since(std::chrono::steady_clock::time_point start) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// The slice of a manifest entry the segment loaders need — decoupled
/// from SegmentStore's private ManifestEntry so the whole load pipeline
/// can live in this anonymous namespace.
struct EntryView {
  TimeSec unit_time = 0;
  std::uint64_t vp_count = 0;
  std::uint64_t trusted_count = 0;
  SegmentCodec codec = SegmentCodec::kV1;
  Hash32 digest{};
  std::string name;  ///< file name inside the store directory
};

/// One worker's result for one segment: either a fully-built shard ready
/// for VpTimeline::adopt_shard, or an error naming the damage. seed_ok
/// means every profile was admitted from a canonically-laid-out segment,
/// so the manifest digest may pre-seed the shard's digest cache.
struct SegmentLoad {
  std::shared_ptr<index::TimeShard> shard;
  std::size_t rejected = 0;
  bool seed_ok = false;
  std::uint64_t read_us = 0;
  std::uint64_t validate_us = 0;
  std::uint64_t parse_us = 0;
  std::string error;  ///< non-empty ⇔ the segment is damaged
};

std::unordered_set<Id16, Id16Hasher> parse_trusted_ids(Reader& reader,
                                                       std::uint64_t count) {
  std::unordered_set<Id16, Id16Hasher> trusted;
  trusted.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Id16 id;
    const auto b = reader.take(id.bytes.size());
    std::copy(b.begin(), b.end(), id.bytes.begin());
    trusted.insert(id);
  }
  return trusted;
}

/// Screens one wire payload and admits it into the shard under
/// construction. Mirrors what db.restore() would do profile by profile:
/// the structural screen runs again (defense in depth, exactly like
/// vp_store), a unit-time mismatch or duplicate id is counted and never
/// loaded. Returns the admitted id (stable — it lives in the shard's
/// map), or nullptr when the payload was rejected.
const Id16* admit_profile(index::TimeShard& shard, std::span<const std::uint8_t> payload,
                          const std::unordered_set<Id16, Id16Hasher>& trusted,
                          TimeSec unit_time, const vp::VpUploadPolicy& policy,
                          std::size_t& rejected) {
  try {
    auto profile = vp::ViewProfile::parse(payload);
    if (profile.unit_time() != unit_time || !policy.well_formed(profile)) {
      ++rejected;
      return nullptr;
    }
    const Id16 id = profile.vp_id();
    auto owned = std::make_shared<const vp::ViewProfile>(std::move(profile));
    auto [pit, inserted] = shard.profiles.emplace(id, std::move(owned));
    if (!inserted) {
      ++rejected;  // duplicate id within one segment
      return nullptr;
    }
    shard.grid.insert(pit->second.get());
    if (trusted.contains(id)) shard.trusted.insert(id);
    return &pit->first;
  } catch (const std::exception&) {
    ++rejected;
    return nullptr;
  }
}

/// v1 segment → shard. The full SHA-256 content pass is v1's only
/// integrity check, so it always runs.
void load_v1_segment(std::span<const std::uint8_t> bytes, const EntryView& entry,
                     const vp::VpUploadPolicy& policy, SegmentLoad& out) {
  const auto validate_start = std::chrono::steady_clock::now();
  Reader reader(bytes, entry.name);
  reader.expect_magic(kSegmentMagic, "segment");
  const std::uint32_t version = reader.u32();
  if (version != kSegmentFormatVersion)
    throw std::runtime_error("segment_store: unsupported segment version in " +
                             entry.name);
  const std::size_t content_begin = reader.position();
  const auto unit_time = static_cast<TimeSec>(reader.u64());
  const std::uint64_t vp_count = reader.u64();
  const std::uint64_t trusted_count = reader.u64();
  if (unit_time != entry.unit_time || vp_count != entry.vp_count ||
      trusted_count != entry.trusted_count)
    throw std::runtime_error("segment_store: segment/manifest disagree on " +
                             entry.name);
  // Overflow-safe plausibility bound before the multiplication below.
  if (vp_count > reader.remaining() / vp::kVpWireSize)
    throw std::runtime_error("segment_store: implausible VP count in " + entry.name);
  const auto payloads = reader.take(vp_count * vp::kVpWireSize);
  const auto trusted = parse_trusted_ids(reader, trusted_count);
  const std::size_t content_len = reader.position() - content_begin;
  const Hash32 stored = reader.hash32();
  if (reader.remaining() != 0)
    throw std::runtime_error("segment_store: trailing bytes in " + entry.name +
                             " at offset " + std::to_string(reader.position()));
  // Both checks matter: the trailer spots torn/corrupted content, the
  // manifest comparison spots a stale file swapped in under the name.
  if (stored != entry.digest)
    throw std::runtime_error("segment_store: digest trailer mismatch in " +
                             entry.name);
  if (sha256_prefix(bytes.subspan(content_begin), content_len) != entry.digest)
    throw std::runtime_error("segment_store: content digest mismatch in " +
                             entry.name + " (content at offset " +
                             std::to_string(content_begin) + ", " +
                             std::to_string(content_len) + " bytes)");
  out.validate_us = us_since(validate_start);

  const auto parse_start = std::chrono::steady_clock::now();
  out.shard->profiles.reserve(vp_count);
  for (std::uint64_t i = 0; i < vp_count; ++i)
    admit_profile(*out.shard, payloads.subspan(i * vp::kVpWireSize, vp::kVpWireSize),
                  trusted, entry.unit_time, policy, out.rejected);
  out.parse_us = us_since(parse_start);
  // Digest verified + everything admitted ⇒ the shard's canonical bytes
  // are exactly the segment content: safe to seed the digest cache.
  out.seed_ok = out.rejected == 0;
}

/// v2 segment → shard. Integrity = whole-file CRC32C + embedded-digest/
/// manifest comparison (+ optional deep SHA-256); structure = strict
/// dense offset table (the writer only ever emits one), so the arena IS
/// the canonical payload section.
void load_v2_segment(std::span<const std::uint8_t> bytes, const EntryView& entry,
                     const vp::VpUploadPolicy& policy, bool deep_verify,
                     SegmentLoad& out) {
  const auto validate_start = std::chrono::steady_clock::now();
  if (bytes.size() < kV2Prefix + kV2Trailer)
    throw std::runtime_error("segment_store: truncated " + entry.name + " (" +
                             std::to_string(bytes.size()) +
                             " bytes, v2 needs at least " +
                             std::to_string(kV2Prefix + kV2Trailer) + ")");
  // Whole-file CRC first: one linear pass rejects torn writes and bit
  // rot anywhere — including inside the offset table the parser is about
  // to trust — before any field is interpreted.
  const std::size_t body_len = bytes.size() - 4;
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i)
    stored_crc |= static_cast<std::uint32_t>(bytes[body_len + static_cast<std::size_t>(i)]) << (8 * i);
  if (crypto::crc32c(bytes.subspan(0, body_len)) != stored_crc)
    throw std::runtime_error("segment_store: CRC32C mismatch in " + entry.name +
                             " (" + std::to_string(bytes.size()) + "-byte file)");

  Reader reader(bytes, entry.name);
  reader.expect_magic(kSegmentMagicV2, "segment");
  const std::uint32_t version = reader.u32();
  if (version != kSegmentFormatVersionV2)
    throw std::runtime_error("segment_store: unsupported segment version in " +
                             entry.name);
  const auto unit_time = static_cast<TimeSec>(reader.u64());
  const std::uint64_t vp_count = reader.u64();
  const std::uint64_t trusted_count = reader.u64();
  const std::uint64_t arena_len = reader.u64();
  if (unit_time != entry.unit_time || vp_count != entry.vp_count ||
      trusted_count != entry.trusted_count)
    throw std::runtime_error("segment_store: segment/manifest disagree on " +
                             entry.name);
  // Overflow-safe plausibility bounds before the exact-size arithmetic.
  if (vp_count > bytes.size() / kV2TableEntry || arena_len > bytes.size() ||
      trusted_count > bytes.size() / 16)
    throw std::runtime_error("segment_store: implausible counts in " + entry.name);
  const std::size_t expected = kV2Prefix + vp_count * kV2TableEntry + arena_len +
                               trusted_count * 16 + kV2Trailer;
  if (bytes.size() != expected)
    throw std::runtime_error("segment_store: size mismatch in " + entry.name +
                             " (" + std::to_string(bytes.size()) +
                             " bytes, v2 layout needs " + std::to_string(expected) + ")");

  // Offset table: strictly dense ascending extents of exactly one wire
  // payload each. Anything else — overlap, gap, short/long extent, an
  // extent past the arena — names the table index and its file offset.
  const std::size_t table_begin = reader.position();
  std::uint64_t prev_end = 0;
  for (std::uint64_t i = 0; i < vp_count; ++i) {
    const std::uint64_t off = reader.u64();
    const std::uint32_t len = reader.u32();
    const std::string where = " (table entry " + std::to_string(i) +
                              " at file offset " +
                              std::to_string(table_begin + i * kV2TableEntry) + ")";
    if (len != vp::kVpWireSize)
      throw std::runtime_error("segment_store: bad payload length " +
                               std::to_string(len) + " in " + entry.name + where);
    if (off < prev_end)
      throw std::runtime_error("segment_store: overlapping payload extents in " +
                               entry.name + where);
    if (off > prev_end)
      throw std::runtime_error("segment_store: gap in payload arena of " +
                               entry.name + where);
    if (off + len > arena_len)
      throw std::runtime_error("segment_store: payload extent past arena end in " +
                               entry.name + where);
    prev_end = off + len;
  }
  if (prev_end != arena_len)
    throw std::runtime_error("segment_store: arena size disagrees with offset table in " +
                             entry.name + " (table covers " + std::to_string(prev_end) +
                             " of " + std::to_string(arena_len) + " arena bytes)");

  const auto arena = reader.take(arena_len);
  const std::size_t trusted_begin = reader.position();
  const auto trusted = parse_trusted_ids(reader, trusted_count);
  const Hash32 stored_digest = reader.hash32();
  (void)reader.u32();  // the CRC32C, already verified above
  if (reader.remaining() != 0)
    throw std::runtime_error("segment_store: trailing bytes in " + entry.name +
                             " at offset " + std::to_string(reader.position()));
  // A stale or misnamed file (e.g. a valid v2 segment renamed over
  // another digest's name) carries the wrong embedded digest.
  if (stored_digest != entry.digest)
    throw std::runtime_error("segment_store: segment digest field disagrees with manifest for " +
                             entry.name);
  if (deep_verify) {
    // Canonical content = (unit_time, vp_count, trusted_count) header +
    // arena + trusted ids — dense ascending layout was proven above.
    crypto::Sha256 hasher;
    hasher.update(bytes.subspan(8, 24));
    hasher.update(arena);
    hasher.update(bytes.subspan(trusted_begin, trusted_count * 16));
    if (hasher.finish() != entry.digest)
      throw std::runtime_error("segment_store: content digest mismatch in " +
                               entry.name + " (deep verify)");
  }
  out.validate_us = us_since(validate_start);

  const auto parse_start = std::chrono::steady_clock::now();
  out.shard->profiles.reserve(vp_count);
  const Id16* prev_id = nullptr;
  for (std::uint64_t i = 0; i < vp_count; ++i) {
    const Id16* id = admit_profile(*out.shard,
                                   arena.subspan(i * vp::kVpWireSize, vp::kVpWireSize),
                                   trusted, entry.unit_time, policy, out.rejected);
    if (id == nullptr) continue;
    // Canonical order check: ascending ids are what make the arena the
    // digest preimage. Out of order ⇒ not a file our writer produced.
    if (prev_id != nullptr && !(*prev_id < *id))
      throw std::runtime_error("segment_store: profile ids out of order in " +
                               entry.name + " (payload " + std::to_string(i) + ")");
    prev_id = id;
  }
  out.parse_us = us_since(parse_start);
  out.seed_ok = out.rejected == 0;
}

SegmentLoad load_one_segment(const std::string& path, const EntryView& entry,
                             const vp::VpUploadPolicy& policy,
                             const index::SpatialGridConfig& grid_cfg,
                             bool deep_verify) noexcept {
  SegmentLoad out;
  try {
    const auto read_start = std::chrono::steady_clock::now();
    const auto bytes = read_file(path);
    out.read_us = us_since(read_start);
    out.shard = std::make_shared<index::TimeShard>(entry.unit_time, grid_cfg);
    if (entry.codec == SegmentCodec::kV2)
      load_v2_segment(bytes, entry, policy, deep_verify, out);
    else
      load_v1_segment(bytes, entry, policy, out);
  } catch (const std::exception& e) {
    out.shard.reset();
    out.error = e.what();
  }
  return out;
}

std::string entry_file_name(SegmentCodec codec, const Hash32& digest) {
  return codec == SegmentCodec::kV2 ? SegmentStore::segment_file_name_v2(digest)
                                    : SegmentStore::segment_file_name(digest);
}

}  // namespace

SegmentStore::SegmentStore(std::string dir, SegmentStoreConfig cfg)
    : dir_(std::move(dir)), cfg_(cfg) {
  if (cfg_.keep_manifests == 0) cfg_.keep_manifests = 1;
  adopt_metrics(cfg_.metrics);
}

void SegmentStore::adopt_metrics(obs::MetricsRegistry* registry) const {
  if (registry == nullptr || m_.checkpoints != nullptr) return;
  m_.checkpoints = &registry->counter("viewmap_store_checkpoints_total");
  m_.bytes_written = &registry->counter("viewmap_store_bytes_written_total");
  m_.segments_written = &registry->counter("viewmap_store_segments_written_total");
  m_.segments_reused = &registry->counter("viewmap_store_segments_reused_total");
  m_.recoveries = &registry->counter("viewmap_store_recoveries_total");
  m_.recovered_profiles = &registry->counter("viewmap_store_recovered_profiles_total");
  m_.checkpoint_us = &registry->histogram("viewmap_store_checkpoint_us");
  m_.fsync_us = &registry->histogram("viewmap_store_fsync_us");
  m_.recover_us = &registry->histogram("viewmap_store_recover_us");
  m_.recover_read_us = &registry->histogram("viewmap_store_recover_read_us");
  m_.recover_validate_us = &registry->histogram("viewmap_store_recover_validate_us");
  m_.recover_parse_us = &registry->histogram("viewmap_store_recover_parse_us");
  m_.recover_adopt_us = &registry->histogram("viewmap_store_recover_adopt_us");
}

std::string SegmentStore::segment_file_name(const Hash32& digest) {
  // 16 digest bytes (128 bits) name the file — ample collision margin —
  // and keep names filesystem-friendly; the full 32-byte digest still
  // travels in the manifest entry and the segment trailer.
  return "seg-" + to_hex(digest.truncated().bytes) + kSegmentSuffix;
}

std::string SegmentStore::segment_file_name_v2(const Hash32& digest) {
  return "seg-" + to_hex(digest.truncated().bytes) + kSegmentSuffixV2;
}

std::string SegmentStore::manifest_file_name(std::uint64_t sequence) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(sequence));
  return std::string(kManifestPrefix) + buf + kManifestSuffix;
}

std::string SegmentStore::full_path(const std::string& name) const {
  return (fs::path(dir_) / name).string();
}

void SegmentStore::write_file(const std::string& name, std::span<const std::uint8_t> bytes) {
  const std::string path = full_path(name);
  if (const int err = failpoint::inject("store.write.open"); err != 0)
    throw StoreError("segment_store: cannot create " + path, err);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw StoreError("segment_store: cannot create " + path, errno);

  // A fired kShortWrite persists a genuine torn prefix — half the bytes
  // reach the file before the injected EIO — so crash-consistency tests
  // exercise real partial data under the temp name, not just a clean
  // early return.
  std::span<const std::uint8_t> to_write = bytes;
  int inject_after_write = 0;
  if (failpoint::any_armed()) {
    const auto d = failpoint::evaluate("store.write.data");
    if (d.action == failpoint::Action::kShortWrite)
      to_write = bytes.subspan(0, bytes.size() / 2);
    if (d.fires()) inject_after_write = d.injected_errno();
    if (d.action == failpoint::Action::kError) {
      ::close(fd);
      throw std::runtime_error("segment_store: write failed for " + path +
                               " (injected)");
    }
  }
  std::size_t done = 0;
  while (done < to_write.size()) {
    const ssize_t n = ::write(fd, to_write.data() + done, to_write.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw StoreError("segment_store: write failed for " + path, err);
    }
    done += static_cast<std::size_t>(n);
  }
  if (inject_after_write != 0) {
    ::close(fd);
    throw StoreError("segment_store: write failed for " + path, inject_after_write);
  }
  if (cfg_.fsync) {
    const auto fsync_start = std::chrono::steady_clock::now();
    if (const int err = failpoint::inject("store.write.fsync"); err != 0) {
      ::close(fd);
      throw StoreError("segment_store: fsync failed for " + path, err);
    }
    if (::fsync(fd) != 0) {
      const int err = errno;
      ::close(fd);
      throw StoreError("segment_store: fsync failed for " + path, err);
    }
    if (m_.fsync_us != nullptr) m_.fsync_us->record(us_since(fsync_start));
  }
  if (const int err = failpoint::inject("store.write.close"); err != 0) {
    ::close(fd);
    throw StoreError("segment_store: close failed for " + path, err);
  }
  if (::close(fd) != 0)
    throw StoreError("segment_store: close failed for " + path, errno);
  if (cfg_.op_log != nullptr)
    cfg_.op_log->push_back({RecordedOp::Kind::kWriteFile, name, {},
                            std::vector<std::uint8_t>(bytes.begin(), bytes.end())});
}

void SegmentStore::publish_file(const std::string& name,
                                std::span<const std::uint8_t> bytes) {
  const std::string tmp = name + kTempSuffix;
  try {
    write_file(tmp, bytes);
    rename_file(tmp, name);
  } catch (...) {
    // The temp may hold partial data (short write) or nothing at all
    // (failed open); either way it must not outlive the failed attempt —
    // retries and restarts expect a debris-free directory without
    // waiting for the next successful checkpoint's gc().
    remove_file(tmp);
    throw;
  }
}

void SegmentStore::rename_file(const std::string& from, const std::string& to) {
  if (const int err = failpoint::inject("store.rename"); err != 0)
    throw StoreError("segment_store: rename " + from + " -> " + to + " failed", err);
  if (std::rename(full_path(from).c_str(), full_path(to).c_str()) != 0)
    throw StoreError("segment_store: rename " + from + " -> " + to + " failed",
                     errno);
  if (cfg_.op_log != nullptr)
    cfg_.op_log->push_back({RecordedOp::Kind::kRename, from, to, {}});
}

bool SegmentStore::remove_file(const std::string& name) {
  if (::unlink(full_path(name).c_str()) != 0) return false;
  if (cfg_.op_log != nullptr)
    cfg_.op_log->push_back({RecordedOp::Kind::kRemove, name, {}, {}});
  return true;
}

void SegmentStore::fsync_dir() const {
  if (const int err = failpoint::inject("store.dir.fsync"); err != 0)
    throw StoreError("segment_store: fsync failed for dir " + dir_, err);
  const int fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw StoreError("segment_store: cannot open dir " + dir_, errno);
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) throw StoreError("segment_store: fsync failed for dir " + dir_, err);
}

std::vector<std::uint64_t> SegmentStore::list_manifests_desc() const {
  std::vector<std::uint64_t> out;
  // A store directory that was never created is a fresh store; a
  // directory that exists but cannot be listed is an I/O failure and
  // must NOT masquerade as one — recover() would otherwise hand back an
  // empty database over weeks of intact checkpoints.
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec == std::errc::no_such_file_or_directory) return out;
  if (ec)
    throw std::runtime_error("segment_store: cannot list " + dir_ + ": " +
                             ec.message());
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with(kManifestPrefix) || !name.ends_with(kManifestSuffix)) continue;
    const std::string hex = name.substr(
        std::strlen(kManifestPrefix),
        name.size() - std::strlen(kManifestPrefix) - std::strlen(kManifestSuffix));
    if (hex.size() != 16 ||
        hex.find_first_not_of("0123456789abcdef") != std::string::npos)
      continue;  // not ours; leave alone
    out.push_back(std::strtoull(hex.c_str(), nullptr, 16));
  }
  std::sort(out.rbegin(), out.rend());
  return out;
}

std::uint64_t SegmentStore::latest_sequence() const {
  const auto manifests = list_manifests_desc();
  return manifests.empty() ? 0 : manifests.front();
}

std::vector<std::uint64_t> SegmentStore::manifest_sequences() const {
  auto out = list_manifests_desc();
  std::reverse(out.begin(), out.end());
  return out;
}

CheckpointStats SegmentStore::checkpoint(const index::DbSnapshot& snap) {
  const auto start = std::chrono::steady_clock::now();
  fs::create_directories(dir_);
  CheckpointStats stats;
  stats.sequence = latest_sequence() + 1;
  stats.shards_total = snap.shard_count();

  // ── segments: write only what the previous checkpoints don't seal ──
  std::vector<ManifestEntry> entries;
  entries.reserve(snap.shard_count());
  for (const auto& shard : snap.shards()) {
    ManifestEntry entry{shard->unit_time, shard->profiles.size(), shard->trusted.size(),
                        cfg_.codec, shard->content_digest()};

    // Reuse an already-sealed segment by reference when allowed: always
    // the target codec's file; the other codec's only under kV2 with
    // reuse_any_codec (kV1 stays byte-compatible with the old writer,
    // and reuse_any_codec=false is the migration rewrite).
    std::vector<SegmentCodec> probe{cfg_.codec};
    if (cfg_.codec == SegmentCodec::kV2 && cfg_.reuse_any_codec)
      probe.push_back(SegmentCodec::kV1);
    bool reused = false;
    for (const SegmentCodec codec : probe) {
      std::error_code ec;
      const auto existing_size =
          fs::file_size(full_path(entry_file_name(codec, entry.digest)), ec);
      if (ec) continue;
      // Already sealed under its content address (a final name is only
      // ever produced by a completed rename): reuse by reference.
      entry.codec = codec;
      ++stats.segments_reused;
      stats.segment_bytes_total += existing_size;
      reused = true;
      break;
    }
    entries.push_back(entry);
    if (reused) continue;

    // Canonical content once (the same serializer the digest hashes),
    // then frame it per codec — v2's arena is the payload section
    // verbatim, which is what keeps identity codec-independent.
    ByteWriter content(24 + entry.vp_count * vp::kVpWireSize + entry.trusted_count * 16);
    shard->stream_content(
        [&content](std::span<const std::uint8_t> chunk) { content.put_bytes(chunk); });
    const std::span<const std::uint8_t> canonical(content.bytes());
    const std::size_t arena_len = entry.vp_count * vp::kVpWireSize;

    std::vector<std::uint8_t> bytes;
    if (cfg_.codec == SegmentCodec::kV2) {
      ByteWriter writer(kV2Prefix + entry.vp_count * kV2TableEntry + canonical.size() - 24 +
                        kV2Trailer);
      writer.put_bytes(kSegmentMagicV2);
      writer.put_u32(kSegmentFormatVersionV2);
      writer.put_bytes(canonical.subspan(0, 24));  // unit_time, vp_count, trusted_count
      writer.put_u64(arena_len);
      for (std::uint64_t i = 0; i < entry.vp_count; ++i) {
        writer.put_u64(i * vp::kVpWireSize);
        writer.put_u32(static_cast<std::uint32_t>(vp::kVpWireSize));
      }
      writer.put_bytes(canonical.subspan(24));  // arena + trusted ids
      writer.put_bytes(entry.digest.bytes);
      writer.put_u32(crypto::crc32c(writer.bytes()));
      bytes = std::move(writer).take();
    } else {
      ByteWriter writer(8 + canonical.size() + 32);
      writer.put_bytes(kSegmentMagic);
      writer.put_u32(kSegmentFormatVersion);
      writer.put_bytes(canonical);
      writer.put_bytes(entry.digest.bytes);
      bytes = std::move(writer).take();
    }
    const std::string name = entry_file_name(entry.codec, entry.digest);
    publish_file(name, bytes);
    ++stats.segments_written;
    stats.bytes_written += bytes.size();
    stats.segment_bytes_total += bytes.size();
  }
  // Durability barrier: every segment rename must be on disk before a
  // manifest referencing it can appear.
  if (cfg_.fsync) fsync_dir();

  // ── manifest: the atomic commit point ──────────────────────────────
  // A kV1 store writes version-1 manifests (and referenced only v1
  // segments above), so its output is byte-identical to the old writer;
  // anything else needs the per-entry codec of version 2.
  const std::uint32_t manifest_version =
      cfg_.codec == SegmentCodec::kV1 ? kManifestFormatVersion : kManifestFormatVersionV2;
  const std::size_t entry_size = manifest_version == kManifestFormatVersion ? 56 : 60;
  ByteWriter writer(72 + entries.size() * entry_size);
  writer.put_bytes(kManifestMagic);
  writer.put_u32(manifest_version);
  writer.put_u64(stats.sequence);
  writer.put_i64(snap.trusted_now());
  writer.put_u64(entries.size());
  for (const auto& entry : entries) {
    writer.put_i64(entry.unit_time);
    writer.put_u64(entry.vp_count);
    writer.put_u64(entry.trusted_count);
    if (manifest_version == kManifestFormatVersionV2)
      writer.put_u32(static_cast<std::uint32_t>(entry.codec));
    writer.put_bytes(entry.digest.bytes);
  }
  writer.put_bytes(sha256_prefix(writer.bytes(), writer.size()).bytes);
  const std::vector<std::uint8_t> manifest = std::move(writer).take();

  const std::string manifest_name = manifest_file_name(stats.sequence);
  publish_file(manifest_name, manifest);
  if (cfg_.fsync) fsync_dir();
  stats.bytes_written += manifest.size();

  stats.files_removed = gc();
  if (m_.checkpoints != nullptr) {
    m_.checkpoints->add();
    m_.bytes_written->add(stats.bytes_written);
    m_.segments_written->add(stats.segments_written);
    m_.segments_reused->add(stats.segments_reused);
    m_.checkpoint_us->record(us_since(start));
  }
  return stats;
}

SegmentStore::Manifest SegmentStore::read_manifest(std::uint64_t sequence) const {
  const std::string name = manifest_file_name(sequence);
  const auto bytes = read_file(full_path(name));
  Reader reader(bytes, name);
  reader.expect_magic(kManifestMagic, "manifest");
  const std::uint32_t version = reader.u32();
  if (version != kManifestFormatVersion && version != kManifestFormatVersionV2)
    throw std::runtime_error("segment_store: unsupported manifest version in " + name);
  Manifest manifest;
  manifest.sequence = reader.u64();
  if (manifest.sequence != sequence)
    throw std::runtime_error("segment_store: sequence mismatch in " + name);
  manifest.trusted_clock = static_cast<TimeSec>(reader.u64());
  const std::uint64_t shard_count = reader.u64();
  // Sanity bound before the reserve: the trailer needs 32 bytes, each
  // entry 56 (v1) or 60 (v2) — a count the remaining bytes cannot hold
  // is corruption.
  const std::size_t entry_size = version == kManifestFormatVersion ? 56 : 60;
  if (shard_count > (reader.remaining() < 32 ? 0 : (reader.remaining() - 32) / entry_size))
    throw std::runtime_error("segment_store: implausible shard count in " + name);
  manifest.entries.reserve(shard_count);
  for (std::uint64_t i = 0; i < shard_count; ++i) {
    ManifestEntry entry;
    entry.unit_time = static_cast<TimeSec>(reader.u64());
    entry.vp_count = reader.u64();
    entry.trusted_count = reader.u64();
    if (version == kManifestFormatVersionV2) {
      const std::uint32_t codec = reader.u32();
      if (codec != static_cast<std::uint32_t>(SegmentCodec::kV1) &&
          codec != static_cast<std::uint32_t>(SegmentCodec::kV2))
        throw std::runtime_error("segment_store: unknown segment codec " +
                                 std::to_string(codec) + " in " + name +
                                 " (entry " + std::to_string(i) + ")");
      entry.codec = static_cast<SegmentCodec>(codec);
    }
    entry.digest = reader.hash32();
    manifest.entries.push_back(entry);
  }
  const std::size_t payload_len = reader.position();
  const Hash32 stored = reader.hash32();
  if (reader.remaining() != 0)
    throw std::runtime_error("segment_store: trailing bytes in " + name +
                             " at offset " + std::to_string(reader.position()));
  if (stored != sha256_prefix(bytes, payload_len))
    throw std::runtime_error("segment_store: manifest checksum mismatch in " + name);
  return manifest;
}

void SegmentStore::load_segments(const Manifest& manifest, sys::VpDatabase& db,
                                 RecoveryStats& stats) const {
  if (manifest.entries.empty()) return;
  std::vector<EntryView> entries;
  entries.reserve(manifest.entries.size());
  for (const auto& entry : manifest.entries)
    entries.push_back({entry.unit_time, entry.vp_count, entry.trusted_count,
                       entry.codec, entry.digest,
                       entry_file_name(entry.codec, entry.digest)});

  const vp::VpUploadPolicy policy = db.policy();
  const index::SpatialGridConfig grid_cfg = db.timeline().config().grid;
  unsigned want = cfg_.restore_threads != 0 ? cfg_.restore_threads
                                            : std::thread::hardware_concurrency();
  if (want == 0) want = 1;
  const auto threads =
      static_cast<unsigned>(std::min<std::size_t>(want, entries.size()));
  stats.threads_used = threads;

  // ── fan out: each worker pulls the next manifest entry and builds a
  // ready-to-adopt shard. Errors are captured per entry, never thrown
  // across threads.
  std::vector<SegmentLoad> results(entries.size());
  std::atomic<std::size_t> cursor{0};
  const auto worker = [&]() noexcept {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= entries.size()) return;
      results[i] = load_one_segment(full_path(entries[i].name), entries[i], policy,
                                    grid_cfg, cfg_.deep_verify);
    }
  };
  {
    obs::SpanScope span("recover_segments");
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
    worker();  // the recovering thread is pool member 0
    for (auto& th : pool) th.join();
  }
  for (const auto& r : results) {
    stats.read_us += r.read_us;
    stats.validate_us += r.validate_us;
    stats.parse_us += r.parse_us;
  }
  // Deterministic failure: the first damaged segment in MANIFEST order,
  // whichever worker happened to hit it — 1 thread and N threads throw
  // the identical error.
  for (const auto& r : results)
    if (!r.error.empty()) throw std::runtime_error(r.error);

  // ── adopt in manifest order on the calling thread: deterministic
  // first-wins collision resolution whatever the pool width.
  obs::SpanScope adopt_span("recover_adopt");
  const auto adopt_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    SegmentLoad& r = results[i];
    const std::size_t survivors = r.shard->profiles.size();
    // Seeding the manifest digest makes the first post-restart
    // checkpoint reuse this segment by reference without re-hashing;
    // only valid when the shard is exactly the segment's content
    // (adopt_shard invalidates it again if a collision drops anything).
    if (r.seed_ok) r.shard->seed_digest(entries[i].digest);
    const std::size_t dropped = db.timeline().adopt_shard(std::move(r.shard));
    stats.profiles_loaded += survivors - dropped;
    stats.profiles_rejected += r.rejected + dropped;
    stats.manifest_profiles += entries[i].vp_count;
    ++stats.segments_loaded;
    if (entries[i].codec == SegmentCodec::kV2)
      ++stats.segments_v2;
    else
      ++stats.segments_v1;
  }
  stats.adopt_us += us_since(adopt_start);
}

sys::VpDatabase SegmentStore::recover(RecoveryStats* stats) const {
  return recover_impl({}, {}, stats);
}

sys::VpDatabase SegmentStore::recover(vp::VpUploadPolicy policy,
                                      index::TimelineConfig index_cfg,
                                      RecoveryStats* stats) const {
  return recover_impl(policy, index_cfg, stats);
}

sys::VpDatabase SegmentStore::recover(std::uint64_t sequence,
                                      RecoveryStats* stats) const {
  return recover(sequence, {}, {}, stats);
}

sys::VpDatabase SegmentStore::recover(std::uint64_t sequence,
                                      vp::VpUploadPolicy policy,
                                      index::TimelineConfig index_cfg,
                                      RecoveryStats* stats) const {
  const auto start = std::chrono::steady_clock::now();
  RecoveryStats local;
  ++local.manifests_tried;
  // No fallback: a damaged named checkpoint throws out of load_checkpoint
  // rather than landing the caller on a sibling they did not ask for.
  sys::VpDatabase db = load_checkpoint(sequence, policy, index_cfg, local);
  local.total_us = us_since(start);
  if (stats != nullptr) *stats = local;
  if (m_.recoveries != nullptr) {
    m_.recoveries->add();
    m_.recovered_profiles->add(local.profiles_loaded);
    m_.recover_us->record(local.total_us);
    m_.recover_read_us->record(local.read_us);
    m_.recover_validate_us->record(local.validate_us);
    m_.recover_parse_us->record(local.parse_us);
    m_.recover_adopt_us->record(local.adopt_us);
  }
  return db;
}

sys::VpDatabase SegmentStore::load_checkpoint(std::uint64_t sequence,
                                              vp::VpUploadPolicy policy,
                                              index::TimelineConfig index_cfg,
                                              RecoveryStats& stats) const {
  sys::VpDatabase db(policy, index_cfg);
  Manifest manifest;
  {
    obs::SpanScope span("recover_manifest");
    manifest = read_manifest(sequence);
  }
  load_segments(manifest, db, stats);
  // Force-set, don't advance: trusted restores already advanced the
  // clock, which must not override an operator's reset_clock()
  // recovery captured by the checkpoint (same rule as vp_store).
  db.reset_clock(manifest.trusted_clock);
  stats.sequence = sequence;
  stats.trusted_marked = db.trusted_count();
  return db;
}

sys::VpDatabase SegmentStore::recover_impl(vp::VpUploadPolicy policy,
                                           index::TimelineConfig index_cfg,
                                           RecoveryStats* stats) const {
  const auto start = std::chrono::steady_clock::now();
  RecoveryStats local;
  const auto manifests = list_manifests_desc();
  std::string newest_error;
  for (const std::uint64_t sequence : manifests) {
    ++local.manifests_tried;
    RecoveryStats attempt = local;
    try {
      sys::VpDatabase db = load_checkpoint(sequence, policy, index_cfg, attempt);
      attempt.total_us = us_since(start);
      if (stats != nullptr) *stats = attempt;
      if (m_.recoveries != nullptr) {
        m_.recoveries->add();
        m_.recovered_profiles->add(attempt.profiles_loaded);
        m_.recover_us->record(attempt.total_us);
        m_.recover_read_us->record(attempt.read_us);
        m_.recover_validate_us->record(attempt.validate_us);
        m_.recover_parse_us->record(attempt.parse_us);
        m_.recover_adopt_us->record(attempt.adopt_us);
      }
      return db;
    } catch (const std::exception& e) {
      if (newest_error.empty()) newest_error = e.what();
    }
  }
  if (manifests.empty()) {
    // Fresh store: nothing was ever sealed, an empty database is the
    // correct last checkpoint.
    if (stats != nullptr) *stats = local;
    if (m_.recoveries != nullptr) {
      m_.recoveries->add();
      m_.recover_us->record(us_since(start));
    }
    return sys::VpDatabase(policy, index_cfg);
  }
  throw std::runtime_error("segment_store: no loadable checkpoint in " + dir_ +
                           " (newest failure: " + newest_error + ")");
}

std::size_t SegmentStore::gc() {
  // Walk manifests newest-first, retaining everything until
  // keep_manifests *parseable* ones are in hand: an unparseable manifest
  // must not consume fallback depth — counting it would let one
  // bit-rotted file push the last good checkpoint out of the window.
  // (The corrupt file itself is also retained until it ages past the
  // kept valid ones; a few wasted bytes beat deleting evidence.) A
  // retained manifest that cannot be parsed makes its segment references
  // unknowable — skip segment GC entirely rather than risk deleting data
  // a fallback recovery needs.
  std::unordered_set<std::string> referenced;
  std::unordered_set<std::string> kept_manifests;
  bool references_known = true;
  std::size_t valid_kept = 0;
  for (const std::uint64_t sequence : list_manifests_desc()) {
    if (valid_kept >= cfg_.keep_manifests) break;  // the rest are victims
    kept_manifests.insert(manifest_file_name(sequence));
    try {
      for (const auto& entry : read_manifest(sequence).entries)
        referenced.insert(entry_file_name(entry.codec, entry.digest));
      ++valid_kept;
    } catch (const std::exception&) {
      references_known = false;
    }
  }

  std::size_t removed = 0;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec == std::errc::no_such_file_or_directory) return 0;  // nothing to collect
  if (ec)
    throw std::runtime_error("segment_store: cannot list " + dir_ + ": " +
                             ec.message());
  std::vector<std::string> victims;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(std::string(kSegmentSuffix) + kTempSuffix) ||
        name.ends_with(std::string(kSegmentSuffixV2) + kTempSuffix) ||
        name.ends_with(std::string(kManifestSuffix) + kTempSuffix)) {
      // Our own crash debris (only ours: a foreign *.tmp is left alone
      // like any other foreign file). The single-writer contract means no
      // checkpoint is in flight besides (at most) the one calling us,
      // whose temps are all renamed by now.
      victims.push_back(name);
    } else if (name.starts_with(kManifestPrefix) && name.ends_with(kManifestSuffix)) {
      if (!kept_manifests.contains(name)) victims.push_back(name);
    } else if (name.starts_with("seg-") &&
               (name.ends_with(kSegmentSuffix) || name.ends_with(kSegmentSuffixV2))) {
      if (references_known && !referenced.contains(name)) victims.push_back(name);
    }
    // Anything else in the directory is not ours; leave it alone.
  }
  for (const auto& name : victims)
    if (remove_file(name)) ++removed;
  return removed;
}

std::size_t SegmentStore::sweep_temps() {
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec == std::errc::no_such_file_or_directory) return 0;
  if (ec)
    throw std::runtime_error("segment_store: cannot list " + dir_ + ": " +
                             ec.message());
  std::size_t removed = 0;
  std::vector<std::string> victims;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    // Only our own temp spellings; a final-named file is never a victim
    // here (a stale temp can thus never shadow or be mistaken for a
    // sealed segment — sealed names exist only via completed renames).
    if (name.ends_with(std::string(kSegmentSuffix) + kTempSuffix) ||
        name.ends_with(std::string(kSegmentSuffixV2) + kTempSuffix) ||
        name.ends_with(std::string(kManifestSuffix) + kTempSuffix))
      victims.push_back(name);
  }
  for (const auto& name : victims)
    if (remove_file(name)) ++removed;
  return removed;
}

}  // namespace viewmap::store
