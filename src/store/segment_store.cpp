#include "store/segment_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unordered_set>
#include <utility>

#include "common/bytes.h"
#include "common/hex.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"

namespace viewmap::store {

namespace fs = std::filesystem;

namespace {

constexpr std::array<std::uint8_t, 4> kSegmentMagic{'V', 'S', 'E', 'G'};
constexpr std::array<std::uint8_t, 4> kManifestMagic{'V', 'M', 'A', 'N'};
constexpr const char* kSegmentSuffix = ".vseg";
constexpr const char* kManifestPrefix = "manifest-";
constexpr const char* kManifestSuffix = ".vman";
constexpr const char* kTempSuffix = ".tmp";

/// Bounds-checked little-endian reader over an in-memory file image.
/// Deliberately not common/bytes.h's ByteReader: recovery needs
/// position() (the checksum covers an exact byte prefix), magic checks,
/// and errors naming the damaged file — "this checkpoint is not
/// loadable" must be attributable, never silent garbage.
class Reader {
 public:
  Reader(std::span<const std::uint8_t> data, const std::string& what)
      : data_(data), what_(what) {}

  [[nodiscard]] std::span<const std::uint8_t> take(std::size_t n) {
    if (data_.size() - pos_ < n)
      throw std::runtime_error("segment_store: truncated " + what_);
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  [[nodiscard]] std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
    return v;
  }
  [[nodiscard]] Hash32 hash32() {
    const auto b = take(32);
    Hash32 h;
    std::copy(b.begin(), b.end(), h.bytes.begin());
    return h;
  }
  void expect_magic(const std::array<std::uint8_t, 4>& magic, const char* kind) {
    const auto b = take(4);
    if (std::memcmp(b.data(), magic.data(), 4) != 0)
      throw std::runtime_error(std::string("segment_store: bad ") + kind +
                               " magic in " + what_);
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::string what_;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("segment_store: cannot open " + path);
  std::vector<std::uint8_t> out((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("segment_store: cannot read " + path);
  return out;
}

Hash32 sha256_prefix(std::span<const std::uint8_t> data, std::size_t len) {
  crypto::Sha256 hasher;
  hasher.update(data.subspan(0, len));
  return hasher.finish();
}

std::uint64_t us_since(std::chrono::steady_clock::time_point start) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

SegmentStore::SegmentStore(std::string dir, SegmentStoreConfig cfg)
    : dir_(std::move(dir)), cfg_(cfg) {
  if (cfg_.keep_manifests == 0) cfg_.keep_manifests = 1;
  adopt_metrics(cfg_.metrics);
}

void SegmentStore::adopt_metrics(obs::MetricsRegistry* registry) const {
  if (registry == nullptr || m_.checkpoints != nullptr) return;
  m_.checkpoints = &registry->counter("viewmap_store_checkpoints_total");
  m_.bytes_written = &registry->counter("viewmap_store_bytes_written_total");
  m_.segments_written = &registry->counter("viewmap_store_segments_written_total");
  m_.segments_reused = &registry->counter("viewmap_store_segments_reused_total");
  m_.recoveries = &registry->counter("viewmap_store_recoveries_total");
  m_.recovered_profiles = &registry->counter("viewmap_store_recovered_profiles_total");
  m_.checkpoint_us = &registry->histogram("viewmap_store_checkpoint_us");
  m_.fsync_us = &registry->histogram("viewmap_store_fsync_us");
  m_.recover_us = &registry->histogram("viewmap_store_recover_us");
}

std::string SegmentStore::segment_file_name(const Hash32& digest) {
  // 16 digest bytes (128 bits) name the file — ample collision margin —
  // and keep names filesystem-friendly; the full 32-byte digest still
  // travels in the manifest entry and the segment trailer.
  return "seg-" + to_hex(digest.truncated().bytes) + kSegmentSuffix;
}

std::string SegmentStore::manifest_file_name(std::uint64_t sequence) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(sequence));
  return std::string(kManifestPrefix) + buf + kManifestSuffix;
}

std::string SegmentStore::full_path(const std::string& name) const {
  return (fs::path(dir_) / name).string();
}

void SegmentStore::write_file(const std::string& name, std::span<const std::uint8_t> bytes) {
  const std::string path = full_path(name);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw std::runtime_error("segment_store: cannot create " + path);
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("segment_store: write failed for " + path);
    }
    done += static_cast<std::size_t>(n);
  }
  if (cfg_.fsync) {
    const auto fsync_start = std::chrono::steady_clock::now();
    if (::fsync(fd) != 0) {
      ::close(fd);
      throw std::runtime_error("segment_store: fsync failed for " + path);
    }
    if (m_.fsync_us != nullptr) m_.fsync_us->record(us_since(fsync_start));
  }
  if (::close(fd) != 0)
    throw std::runtime_error("segment_store: close failed for " + path);
  if (cfg_.op_log != nullptr)
    cfg_.op_log->push_back({RecordedOp::Kind::kWriteFile, name, {},
                            std::vector<std::uint8_t>(bytes.begin(), bytes.end())});
}

void SegmentStore::rename_file(const std::string& from, const std::string& to) {
  if (std::rename(full_path(from).c_str(), full_path(to).c_str()) != 0)
    throw std::runtime_error("segment_store: rename " + from + " -> " + to + " failed");
  if (cfg_.op_log != nullptr)
    cfg_.op_log->push_back({RecordedOp::Kind::kRename, from, to, {}});
}

bool SegmentStore::remove_file(const std::string& name) {
  if (::unlink(full_path(name).c_str()) != 0) return false;
  if (cfg_.op_log != nullptr)
    cfg_.op_log->push_back({RecordedOp::Kind::kRemove, name, {}, {}});
  return true;
}

void SegmentStore::fsync_dir() const {
  const int fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw std::runtime_error("segment_store: cannot open dir " + dir_);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw std::runtime_error("segment_store: fsync failed for dir " + dir_);
}

std::vector<std::uint64_t> SegmentStore::list_manifests_desc() const {
  std::vector<std::uint64_t> out;
  // A store directory that was never created is a fresh store; a
  // directory that exists but cannot be listed is an I/O failure and
  // must NOT masquerade as one — recover() would otherwise hand back an
  // empty database over weeks of intact checkpoints.
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec == std::errc::no_such_file_or_directory) return out;
  if (ec)
    throw std::runtime_error("segment_store: cannot list " + dir_ + ": " +
                             ec.message());
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with(kManifestPrefix) || !name.ends_with(kManifestSuffix)) continue;
    const std::string hex = name.substr(
        std::strlen(kManifestPrefix),
        name.size() - std::strlen(kManifestPrefix) - std::strlen(kManifestSuffix));
    if (hex.size() != 16 ||
        hex.find_first_not_of("0123456789abcdef") != std::string::npos)
      continue;  // not ours; leave alone
    out.push_back(std::strtoull(hex.c_str(), nullptr, 16));
  }
  std::sort(out.rbegin(), out.rend());
  return out;
}

std::uint64_t SegmentStore::latest_sequence() const {
  const auto manifests = list_manifests_desc();
  return manifests.empty() ? 0 : manifests.front();
}

std::vector<std::uint64_t> SegmentStore::manifest_sequences() const {
  auto out = list_manifests_desc();
  std::reverse(out.begin(), out.end());
  return out;
}

CheckpointStats SegmentStore::checkpoint(const index::DbSnapshot& snap) {
  const auto start = std::chrono::steady_clock::now();
  fs::create_directories(dir_);
  CheckpointStats stats;
  stats.sequence = latest_sequence() + 1;
  stats.shards_total = snap.shard_count();

  // ── segments: write only what the previous checkpoints don't seal ──
  std::vector<ManifestEntry> entries;
  entries.reserve(snap.shard_count());
  for (const auto& shard : snap.shards()) {
    ManifestEntry entry{shard->unit_time, shard->profiles.size(), shard->trusted.size(),
                        shard->content_digest()};
    entries.push_back(entry);
    const std::string name = segment_file_name(entry.digest);
    std::error_code ec;
    const auto existing_size = fs::file_size(full_path(name), ec);
    if (!ec) {
      // Already sealed under its content address (a final name is only
      // ever produced by a completed rename): reuse by reference.
      ++stats.segments_reused;
      stats.segment_bytes_total += existing_size;
      continue;
    }
    ByteWriter writer(48 + entry.vp_count * vp::kVpWireSize + entry.trusted_count * 16);
    writer.put_bytes(kSegmentMagic);
    writer.put_u32(kSegmentFormatVersion);
    shard->stream_content(
        [&writer](std::span<const std::uint8_t> chunk) { writer.put_bytes(chunk); });
    writer.put_bytes(entry.digest.bytes);
    const std::vector<std::uint8_t> bytes = std::move(writer).take();
    write_file(name + kTempSuffix, bytes);
    rename_file(name + kTempSuffix, name);
    ++stats.segments_written;
    stats.bytes_written += bytes.size();
    stats.segment_bytes_total += bytes.size();
  }
  // Durability barrier: every segment rename must be on disk before a
  // manifest referencing it can appear.
  if (cfg_.fsync) fsync_dir();

  // ── manifest: the atomic commit point ──────────────────────────────
  ByteWriter writer(72 + entries.size() * 56);
  writer.put_bytes(kManifestMagic);
  writer.put_u32(kManifestFormatVersion);
  writer.put_u64(stats.sequence);
  writer.put_i64(snap.trusted_now());
  writer.put_u64(entries.size());
  for (const auto& entry : entries) {
    writer.put_i64(entry.unit_time);
    writer.put_u64(entry.vp_count);
    writer.put_u64(entry.trusted_count);
    writer.put_bytes(entry.digest.bytes);
  }
  writer.put_bytes(sha256_prefix(writer.bytes(), writer.size()).bytes);
  const std::vector<std::uint8_t> manifest = std::move(writer).take();

  const std::string manifest_name = manifest_file_name(stats.sequence);
  write_file(manifest_name + kTempSuffix, manifest);
  rename_file(manifest_name + kTempSuffix, manifest_name);
  if (cfg_.fsync) fsync_dir();
  stats.bytes_written += manifest.size();

  stats.files_removed = gc();
  if (m_.checkpoints != nullptr) {
    m_.checkpoints->add();
    m_.bytes_written->add(stats.bytes_written);
    m_.segments_written->add(stats.segments_written);
    m_.segments_reused->add(stats.segments_reused);
    m_.checkpoint_us->record(us_since(start));
  }
  return stats;
}

SegmentStore::Manifest SegmentStore::read_manifest(std::uint64_t sequence) const {
  const std::string name = manifest_file_name(sequence);
  const auto bytes = read_file(full_path(name));
  Reader reader(bytes, name);
  reader.expect_magic(kManifestMagic, "manifest");
  const std::uint32_t version = reader.u32();
  if (version != kManifestFormatVersion)
    throw std::runtime_error("segment_store: unsupported manifest version in " + name);
  Manifest manifest;
  manifest.sequence = reader.u64();
  if (manifest.sequence != sequence)
    throw std::runtime_error("segment_store: sequence mismatch in " + name);
  manifest.trusted_clock = static_cast<TimeSec>(reader.u64());
  const std::uint64_t shard_count = reader.u64();
  // Sanity bound before the reserve: the trailer needs 32 bytes, each
  // entry 56 — a count the remaining bytes cannot hold is corruption.
  if (shard_count > (reader.remaining() < 32 ? 0 : (reader.remaining() - 32) / 56))
    throw std::runtime_error("segment_store: implausible shard count in " + name);
  manifest.entries.reserve(shard_count);
  for (std::uint64_t i = 0; i < shard_count; ++i) {
    ManifestEntry entry;
    entry.unit_time = static_cast<TimeSec>(reader.u64());
    entry.vp_count = reader.u64();
    entry.trusted_count = reader.u64();
    entry.digest = reader.hash32();
    manifest.entries.push_back(entry);
  }
  const std::size_t payload_len = reader.position();
  const Hash32 stored = reader.hash32();
  if (reader.remaining() != 0)
    throw std::runtime_error("segment_store: trailing bytes in " + name);
  if (stored != sha256_prefix(bytes, payload_len))
    throw std::runtime_error("segment_store: manifest checksum mismatch in " + name);
  return manifest;
}

void SegmentStore::load_segments(const Manifest& manifest, sys::VpDatabase& db,
                                 RecoveryStats& stats) const {
  for (const auto& entry : manifest.entries) {
    const std::string name = segment_file_name(entry.digest);
    const auto bytes = read_file(full_path(name));
    Reader reader(bytes, name);
    reader.expect_magic(kSegmentMagic, "segment");
    const std::uint32_t version = reader.u32();
    if (version != kSegmentFormatVersion)
      throw std::runtime_error("segment_store: unsupported segment version in " + name);
    const std::size_t content_begin = reader.position();
    const auto unit_time = static_cast<TimeSec>(reader.u64());
    const std::uint64_t vp_count = reader.u64();
    const std::uint64_t trusted_count = reader.u64();
    if (unit_time != entry.unit_time || vp_count != entry.vp_count ||
        trusted_count != entry.trusted_count)
      throw std::runtime_error("segment_store: segment/manifest disagree on " + name);
    // Overflow-safe plausibility bound before the multiplication below.
    if (vp_count > reader.remaining() / vp::kVpWireSize)
      throw std::runtime_error("segment_store: implausible VP count in " + name);
    const auto payloads = reader.take(vp_count * vp::kVpWireSize);
    std::unordered_set<Id16, Id16Hasher> trusted;
    trusted.reserve(trusted_count);
    for (std::uint64_t i = 0; i < trusted_count; ++i) {
      Id16 id;
      const auto b = reader.take(id.bytes.size());
      std::copy(b.begin(), b.end(), id.bytes.begin());
      trusted.insert(id);
    }
    const std::size_t content_len = reader.position() - content_begin;
    const Hash32 stored = reader.hash32();
    if (reader.remaining() != 0)
      throw std::runtime_error("segment_store: trailing bytes in " + name);
    // Both checks matter: the trailer spots torn/corrupted content, the
    // manifest comparison spots a stale file swapped in under the name.
    if (stored != entry.digest)
      throw std::runtime_error("segment_store: digest trailer mismatch in " + name);
    if (sha256_prefix(std::span<const std::uint8_t>(bytes).subspan(content_begin),
                      content_len) != entry.digest)
      throw std::runtime_error("segment_store: content digest mismatch in " + name);

    // Content verified — admit the profiles. The structural screen runs
    // again anyway (defense in depth, exactly like vp_store): a profile
    // failing it is counted, never loaded.
    for (std::uint64_t i = 0; i < vp_count; ++i) {
      const auto payload = payloads.subspan(i * vp::kVpWireSize, vp::kVpWireSize);
      bool accepted = false;
      try {
        auto profile = vp::ViewProfile::parse(payload);
        const bool is_trusted = trusted.contains(profile.vp_id());
        accepted = db.restore(std::move(profile), is_trusted);
      } catch (const std::exception&) {
        accepted = false;
      }
      if (accepted) {
        ++stats.profiles_loaded;
      } else {
        ++stats.profiles_rejected;
      }
    }
    stats.manifest_profiles += vp_count;
    ++stats.segments_loaded;
  }
}

sys::VpDatabase SegmentStore::recover(RecoveryStats* stats) const {
  return recover_impl({}, {}, stats);
}

sys::VpDatabase SegmentStore::recover(vp::VpUploadPolicy policy,
                                      index::TimelineConfig index_cfg,
                                      RecoveryStats* stats) const {
  return recover_impl(policy, index_cfg, stats);
}

sys::VpDatabase SegmentStore::recover(std::uint64_t sequence,
                                      RecoveryStats* stats) const {
  return recover(sequence, {}, {}, stats);
}

sys::VpDatabase SegmentStore::recover(std::uint64_t sequence,
                                      vp::VpUploadPolicy policy,
                                      index::TimelineConfig index_cfg,
                                      RecoveryStats* stats) const {
  const auto start = std::chrono::steady_clock::now();
  RecoveryStats local;
  ++local.manifests_tried;
  // No fallback: a damaged named checkpoint throws out of load_checkpoint
  // rather than landing the caller on a sibling they did not ask for.
  sys::VpDatabase db = load_checkpoint(sequence, policy, index_cfg, local);
  if (stats != nullptr) *stats = local;
  if (m_.recoveries != nullptr) {
    m_.recoveries->add();
    m_.recovered_profiles->add(local.profiles_loaded);
    m_.recover_us->record(us_since(start));
  }
  return db;
}

sys::VpDatabase SegmentStore::load_checkpoint(std::uint64_t sequence,
                                              vp::VpUploadPolicy policy,
                                              index::TimelineConfig index_cfg,
                                              RecoveryStats& stats) const {
  sys::VpDatabase db(policy, index_cfg);
  const Manifest manifest = read_manifest(sequence);
  load_segments(manifest, db, stats);
  // Force-set, don't advance: trusted restores already advanced the
  // clock, which must not override an operator's reset_clock()
  // recovery captured by the checkpoint (same rule as vp_store).
  db.reset_clock(manifest.trusted_clock);
  stats.sequence = sequence;
  stats.trusted_marked = db.trusted_count();
  return db;
}

sys::VpDatabase SegmentStore::recover_impl(vp::VpUploadPolicy policy,
                                           index::TimelineConfig index_cfg,
                                           RecoveryStats* stats) const {
  const auto start = std::chrono::steady_clock::now();
  RecoveryStats local;
  const auto manifests = list_manifests_desc();
  std::string newest_error;
  for (const std::uint64_t sequence : manifests) {
    ++local.manifests_tried;
    RecoveryStats attempt = local;
    try {
      sys::VpDatabase db = load_checkpoint(sequence, policy, index_cfg, attempt);
      if (stats != nullptr) *stats = attempt;
      if (m_.recoveries != nullptr) {
        m_.recoveries->add();
        m_.recovered_profiles->add(attempt.profiles_loaded);
        m_.recover_us->record(us_since(start));
      }
      return db;
    } catch (const std::exception& e) {
      if (newest_error.empty()) newest_error = e.what();
    }
  }
  if (manifests.empty()) {
    // Fresh store: nothing was ever sealed, an empty database is the
    // correct last checkpoint.
    if (stats != nullptr) *stats = local;
    if (m_.recoveries != nullptr) {
      m_.recoveries->add();
      m_.recover_us->record(us_since(start));
    }
    return sys::VpDatabase(policy, index_cfg);
  }
  throw std::runtime_error("segment_store: no loadable checkpoint in " + dir_ +
                           " (newest failure: " + newest_error + ")");
}

std::size_t SegmentStore::gc() {
  // Walk manifests newest-first, retaining everything until
  // keep_manifests *parseable* ones are in hand: an unparseable manifest
  // must not consume fallback depth — counting it would let one
  // bit-rotted file push the last good checkpoint out of the window.
  // (The corrupt file itself is also retained until it ages past the
  // kept valid ones; a few wasted bytes beat deleting evidence.) A
  // retained manifest that cannot be parsed makes its segment references
  // unknowable — skip segment GC entirely rather than risk deleting data
  // a fallback recovery needs.
  std::unordered_set<std::string> referenced;
  std::unordered_set<std::string> kept_manifests;
  bool references_known = true;
  std::size_t valid_kept = 0;
  for (const std::uint64_t sequence : list_manifests_desc()) {
    if (valid_kept >= cfg_.keep_manifests) break;  // the rest are victims
    kept_manifests.insert(manifest_file_name(sequence));
    try {
      for (const auto& entry : read_manifest(sequence).entries)
        referenced.insert(segment_file_name(entry.digest));
      ++valid_kept;
    } catch (const std::exception&) {
      references_known = false;
    }
  }

  std::size_t removed = 0;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec == std::errc::no_such_file_or_directory) return 0;  // nothing to collect
  if (ec)
    throw std::runtime_error("segment_store: cannot list " + dir_ + ": " +
                             ec.message());
  std::vector<std::string> victims;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(std::string(kSegmentSuffix) + kTempSuffix) ||
        name.ends_with(std::string(kManifestSuffix) + kTempSuffix)) {
      // Our own crash debris (only ours: a foreign *.tmp is left alone
      // like any other foreign file). The single-writer contract means no
      // checkpoint is in flight besides (at most) the one calling us,
      // whose temps are all renamed by now.
      victims.push_back(name);
    } else if (name.starts_with(kManifestPrefix) && name.ends_with(kManifestSuffix)) {
      if (!kept_manifests.contains(name)) victims.push_back(name);
    } else if (name.starts_with("seg-") && name.ends_with(kSegmentSuffix)) {
      if (references_known && !referenced.contains(name)) victims.push_back(name);
    }
    // Anything else in the directory is not ours; leave it alone.
  }
  for (const auto& name : victims)
    if (remove_file(name)) ++removed;
  return removed;
}

}  // namespace viewmap::store
