// VP database persistence — the legacy/interchange VMDB container.
//
// A deployed ViewMap service accumulates VPs continuously and must survive
// restarts; investigations run against weeks of history (dashcam storage
// itself retains 2-3 weeks, §2). This module defines a versioned binary
// container for a VpDatabase snapshot. It rewrites the whole database on
// every save, so the live service checkpoints through the incremental,
// crash-consistent segment store instead (store/segment_store.h); VMDB
// remains the single-file interchange format — byte-deterministic for
// equal databases, which the tests lean on — and converts losslessly to
// and from a segment checkpoint (tools/viewmap_convert). Layout:
//
//   magic "VMDB" | version u32 | vp_count u64 | trusted_count u64
//   trusted_clock i64 (the retention clock; i64 min = never set)
//   vp_count   × ViewProfile payload (fixed 4576-byte wire format)
//   trusted_count × Id16
//
// Loading re-runs the structural well-formedness screen on every profile,
// so a tampered or corrupted file can only ever yield fewer VPs, never
// malformed ones. It deliberately does NOT re-run the upload timeliness
// screen: snapshot profiles were admitted by the live service already,
// and trusted profiles loaded mid-stream advance the clock, which must
// not retro-reject anonymous profiles saved alongside them. The trusted
// retention clock itself is persisted and restored, so retention resumes
// where the live service left off.
//
// Profiles are written in (unit-time, id) order — the index's shard
// order — so snapshots are byte-deterministic for equal databases and a
// reloaded database reconstructs the same shards.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "system/vp_database.h"

namespace viewmap::store {

inline constexpr std::uint32_t kFormatVersion = 2;  ///< v2: + trusted_clock

struct LoadStats {
  std::size_t profiles_loaded = 0;
  std::size_t profiles_rejected = 0;  ///< failed the upload screen
  std::size_t trusted_marked = 0;
  std::size_t shards_loaded = 0;  ///< distinct unit-times reconstructed
};

/// Serializes a pinned snapshot into a stream. Because the snapshot is
/// immutable, the output is byte-deterministic even while ingest and
/// eviction keep mutating the live database it came from. Throws
/// std::runtime_error on I/O failure.
void save_snapshot(const index::DbSnapshot& snap, std::ostream& out);
void save_snapshot_file(const index::DbSnapshot& snap, const std::string& path);

/// Convenience: snapshot the database and serialize that.
void save_database(const sys::VpDatabase& db, std::ostream& out);
void save_database_file(const sys::VpDatabase& db, const std::string& path);

/// Loads a snapshot. Throws std::runtime_error on bad magic/version or
/// truncation; individual VPs failing the screen are counted, not fatal.
[[nodiscard]] sys::VpDatabase load_database(std::istream& in,
                                            LoadStats* stats = nullptr);
[[nodiscard]] sys::VpDatabase load_database_file(const std::string& path,
                                                 LoadStats* stats = nullptr);

}  // namespace viewmap::store
