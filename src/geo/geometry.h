// Planar geometry for the road/radio substrate.
//
// All positions are local Cartesian coordinates in meters (an ENU-like
// frame over the simulated city). Line-of-sight — the property the paper's
// field experiments identify as the dominating factor for VP linkage
// (§7.2.1, Table 2) — reduces to segment-vs-obstacle intersection tests.
#pragma once

#include <cmath>
#include <optional>
#include <span>
#include <vector>

namespace viewmap::geo {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double s) noexcept { return {a.x * s, a.y * s}; }
  friend constexpr Vec2 operator*(double s, Vec2 a) noexcept { return a * s; }
  friend constexpr bool operator==(Vec2, Vec2) = default;

  [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }
  [[nodiscard]] constexpr double norm2() const noexcept { return x * x + y * y; }
};

[[nodiscard]] constexpr double dot(Vec2 a, Vec2 b) noexcept { return a.x * b.x + a.y * b.y; }
[[nodiscard]] constexpr double cross(Vec2 a, Vec2 b) noexcept { return a.x * b.y - a.y * b.x; }
[[nodiscard]] inline double distance(Vec2 a, Vec2 b) noexcept { return (a - b).norm(); }

/// Linear interpolation a→b at parameter t ∈ [0,1].
[[nodiscard]] constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) noexcept {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

struct Segment {
  Vec2 a;
  Vec2 b;

  [[nodiscard]] double length() const noexcept { return distance(a, b); }
};

/// Axis-aligned rectangle; the footprint shape for buildings and other
/// artificial structures in the synthetic city.
struct Rect {
  Vec2 min;  ///< lower-left corner
  Vec2 max;  ///< upper-right corner

  [[nodiscard]] constexpr bool contains(Vec2 p) const noexcept {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  [[nodiscard]] constexpr Vec2 center() const noexcept {
    return {(min.x + max.x) / 2, (min.y + max.y) / 2};
  }
  [[nodiscard]] constexpr double width() const noexcept { return max.x - min.x; }
  [[nodiscard]] constexpr double height() const noexcept { return max.y - min.y; }
  /// Grows the rectangle by `margin` on all sides.
  [[nodiscard]] constexpr Rect inflated(double margin) const noexcept {
    return {{min.x - margin, min.y - margin}, {max.x + margin, max.y + margin}};
  }
};

/// Proper segment intersection test (touching endpoints count as hits —
/// a ray grazing a building corner is still obstructed in our model).
[[nodiscard]] bool segments_intersect(const Segment& s1, const Segment& s2) noexcept;

/// True iff the segment passes through (or touches) the rectangle.
[[nodiscard]] bool segment_intersects_rect(const Segment& s, const Rect& r) noexcept;

/// Distance from point p to the segment.
[[nodiscard]] double point_segment_distance(Vec2 p, const Segment& s) noexcept;

/// Index of obstacles blocking the sight line a→b, if any.
/// Obstacles whose interior contains an endpoint also block (a vehicle
/// "inside" a footprint models tunnels/parking structures).
[[nodiscard]] std::optional<std::size_t> first_blocking(
    Vec2 a, Vec2 b, std::span<const Rect> obstacles) noexcept;

/// Convenience wrapper: true iff no obstacle blocks a→b.
[[nodiscard]] bool line_of_sight(Vec2 a, Vec2 b, std::span<const Rect> obstacles) noexcept;

/// Total polyline length.
[[nodiscard]] double polyline_length(std::span<const Vec2> pts) noexcept;

/// Point at arc-length `s` along the polyline (clamped to endpoints).
[[nodiscard]] Vec2 point_along_polyline(std::span<const Vec2> pts, double s) noexcept;

}  // namespace viewmap::geo
