#include "geo/geometry.h"

#include <algorithm>

namespace viewmap::geo {

namespace {

int orientation(Vec2 a, Vec2 b, Vec2 c) noexcept {
  const double v = cross(b - a, c - a);
  if (v > 0) return 1;
  if (v < 0) return -1;
  return 0;
}

bool on_segment(Vec2 p, const Segment& s) noexcept {
  return orientation(s.a, s.b, p) == 0 &&
         p.x >= std::min(s.a.x, s.b.x) && p.x <= std::max(s.a.x, s.b.x) &&
         p.y >= std::min(s.a.y, s.b.y) && p.y <= std::max(s.a.y, s.b.y);
}

}  // namespace

bool segments_intersect(const Segment& s1, const Segment& s2) noexcept {
  const int o1 = orientation(s1.a, s1.b, s2.a);
  const int o2 = orientation(s1.a, s1.b, s2.b);
  const int o3 = orientation(s2.a, s2.b, s1.a);
  const int o4 = orientation(s2.a, s2.b, s1.b);

  if (o1 != o2 && o3 != o4) return true;

  // Collinear special cases.
  if (o1 == 0 && on_segment(s2.a, s1)) return true;
  if (o2 == 0 && on_segment(s2.b, s1)) return true;
  if (o3 == 0 && on_segment(s1.a, s2)) return true;
  if (o4 == 0 && on_segment(s1.b, s2)) return true;
  return false;
}

bool segment_intersects_rect(const Segment& s, const Rect& r) noexcept {
  if (r.contains(s.a) || r.contains(s.b)) return true;
  const Vec2 bl = r.min;
  const Vec2 br = {r.max.x, r.min.y};
  const Vec2 tr = r.max;
  const Vec2 tl = {r.min.x, r.max.y};
  return segments_intersect(s, {bl, br}) || segments_intersect(s, {br, tr}) ||
         segments_intersect(s, {tr, tl}) || segments_intersect(s, {tl, bl});
}

double point_segment_distance(Vec2 p, const Segment& s) noexcept {
  const Vec2 d = s.b - s.a;
  const double len2 = d.norm2();
  if (len2 == 0.0) return distance(p, s.a);
  const double t = std::clamp(dot(p - s.a, d) / len2, 0.0, 1.0);
  return distance(p, s.a + d * t);
}

std::optional<std::size_t> first_blocking(Vec2 a, Vec2 b,
                                          std::span<const Rect> obstacles) noexcept {
  const Segment sight{a, b};
  for (std::size_t i = 0; i < obstacles.size(); ++i)
    if (segment_intersects_rect(sight, obstacles[i])) return i;
  return std::nullopt;
}

bool line_of_sight(Vec2 a, Vec2 b, std::span<const Rect> obstacles) noexcept {
  return !first_blocking(a, b, obstacles).has_value();
}

double polyline_length(std::span<const Vec2> pts) noexcept {
  double total = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) total += distance(pts[i - 1], pts[i]);
  return total;
}

Vec2 point_along_polyline(std::span<const Vec2> pts, double s) noexcept {
  if (pts.empty()) return {};
  if (s <= 0.0) return pts.front();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double seg = distance(pts[i - 1], pts[i]);
    if (s <= seg && seg > 0.0) return lerp(pts[i - 1], pts[i], s / seg);
    s -= seg;
  }
  return pts.back();
}

}  // namespace viewmap::geo
