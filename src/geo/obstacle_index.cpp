#include "geo/obstacle_index.h"

#include <algorithm>
#include <cmath>

namespace viewmap::geo {

ObstacleIndex::ObstacleIndex(std::vector<Rect> obstacles, double cell_size_m)
    : obstacles_(std::move(obstacles)), cell_size_(cell_size_m) {
  if (obstacles_.empty()) return;

  bounds_ = obstacles_.front();
  for (const auto& r : obstacles_) {
    bounds_.min.x = std::min(bounds_.min.x, r.min.x);
    bounds_.min.y = std::min(bounds_.min.y, r.min.y);
    bounds_.max.x = std::max(bounds_.max.x, r.max.x);
    bounds_.max.y = std::max(bounds_.max.y, r.max.y);
  }
  cols_ = std::max(1, static_cast<int>(std::ceil(bounds_.width() / cell_size_)));
  rows_ = std::max(1, static_cast<int>(std::ceil(bounds_.height() / cell_size_)));
  cells_.assign(static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_), {});

  for (std::uint32_t i = 0; i < obstacles_.size(); ++i) {
    int cx0, cy0, cx1, cy1;
    cell_range(obstacles_[i], cx0, cy0, cx1, cy1);
    for (int cy = cy0; cy <= cy1; ++cy)
      for (int cx = cx0; cx <= cx1; ++cx) cells_[cell_of(cx, cy)].push_back(i);
  }
}

void ObstacleIndex::cell_range(const Rect& r, int& cx0, int& cy0, int& cx1,
                               int& cy1) const noexcept {
  auto clamp_col = [this](double x) {
    return std::clamp(static_cast<int>((x - bounds_.min.x) / cell_size_), 0, cols_ - 1);
  };
  auto clamp_row = [this](double y) {
    return std::clamp(static_cast<int>((y - bounds_.min.y) / cell_size_), 0, rows_ - 1);
  };
  cx0 = clamp_col(r.min.x);
  cx1 = clamp_col(r.max.x);
  cy0 = clamp_row(r.min.y);
  cy1 = clamp_row(r.max.y);
}

std::optional<std::size_t> ObstacleIndex::first_blocking(Vec2 a, Vec2 b) const {
  if (obstacles_.empty()) return std::nullopt;

  // Segment entirely outside the indexed area cannot hit anything.
  const Rect seg_box{{std::min(a.x, b.x), std::min(a.y, b.y)},
                     {std::max(a.x, b.x), std::max(a.y, b.y)}};
  if (seg_box.max.x < bounds_.min.x || seg_box.min.x > bounds_.max.x ||
      seg_box.max.y < bounds_.min.y || seg_box.min.y > bounds_.max.y)
    return std::nullopt;

  int cx0, cy0, cx1, cy1;
  cell_range(seg_box, cx0, cy0, cx1, cy1);

  const Segment sight{a, b};
  // Candidates may repeat across cells; obstacles overlapping several
  // cells are rare enough that a test-before-dedupe is cheapest.
  std::size_t best = obstacles_.size();
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      for (std::uint32_t i : cells_[cell_of(cx, cy)]) {
        if (i < best && segment_intersects_rect(sight, obstacles_[i])) best = i;
      }
    }
  }
  if (best == obstacles_.size()) return std::nullopt;
  return best;
}

bool ObstacleIndex::line_of_sight(Vec2 a, Vec2 b) const {
  return !first_blocking(a, b).has_value();
}

bool ObstacleIndex::contains_point(Vec2 p) const {
  if (obstacles_.empty() || !bounds_.contains(p)) return false;
  int cx0, cy0, cx1, cy1;
  cell_range({p, p}, cx0, cy0, cx1, cy1);
  for (std::uint32_t i : cells_[cell_of(cx0, cy0)])
    if (obstacles_[i].contains(p)) return true;
  return false;
}

}  // namespace viewmap::geo
