// Uniform-grid spatial index over obstacle rectangles.
//
// City-scale simulation performs millions of line-of-sight queries per
// run; scanning every building footprint each time is quadratic pain.
// Cells bucket the rectangles overlapping them; a query only tests the
// rectangles in cells touched by the sight segment's bounding box (DSRC
// sight lines are ≤ 400 m, so that is a handful of cells).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/geometry.h"

namespace viewmap::geo {

class ObstacleIndex {
 public:
  ObstacleIndex() = default;  ///< empty index: everything is line-of-sight

  ObstacleIndex(std::vector<Rect> obstacles, double cell_size_m = 200.0);

  [[nodiscard]] bool line_of_sight(Vec2 a, Vec2 b) const;

  /// First obstacle blocking a→b, or nullopt.
  [[nodiscard]] std::optional<std::size_t> first_blocking(Vec2 a, Vec2 b) const;

  /// Is the point inside any obstacle footprint? Vehicles "inside" a
  /// footprint model enclosed structures: tunnels, parking garages,
  /// bridge decks (the paper's hardest NLOS rows in Table 2).
  [[nodiscard]] bool contains_point(Vec2 p) const;

  [[nodiscard]] std::span<const Rect> obstacles() const noexcept { return obstacles_; }
  [[nodiscard]] bool empty() const noexcept { return obstacles_.empty(); }

 private:
  [[nodiscard]] std::size_t cell_of(int cx, int cy) const noexcept {
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(cols_) + static_cast<std::size_t>(cx);
  }
  void cell_range(const Rect& r, int& cx0, int& cy0, int& cx1, int& cy1) const noexcept;

  std::vector<Rect> obstacles_;
  std::vector<std::vector<std::uint32_t>> cells_;
  Rect bounds_{};
  double cell_size_ = 200.0;
  int cols_ = 0;
  int rows_ = 0;
};

}  // namespace viewmap::geo
