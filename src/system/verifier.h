// VP verification — Algorithm 1 of the paper (§5.2.2).
//
// Given a viewmap and an investigation site X:
//   1. compute TrustRank scores seeded at the trusted VPs,
//   2. mark the highest-scored VP u in X LEGITIMATE,
//   3. mark every VP in X reachable from u *through VPs in X* LEGITIMATE,
//   4. everything else claiming to be in X is rejected (treated as fake).
// The single-layer insight: honest VPs near the incident share u's layer;
// fabricated layers either lack a path to u inside X or score lower.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "system/trustrank.h"
#include "system/viewmap_graph.h"

namespace viewmap::sys {

/// Steps 2–3 of Algorithm 1 on an abstract graph: pick the top-scored
/// site member, flood-fill through site members only. Exposed separately
/// so the security benches can drive it over synthetic and traffic-derived
/// graphs without materializing full ViewProfiles.
struct Algorithm1Verdict {
  std::size_t top_scored = 0;            ///< member index of u
  std::vector<std::size_t> legitimate;   ///< W ∪ {u}
};

/// CSR entry — what Verifier::verify runs on the viewmap's own graph
/// view, with no adjacency copy.
[[nodiscard]] Algorithm1Verdict algorithm1(const CsrGraph& graph,
                                           std::span<const double> scores,
                                           std::span<const std::size_t> site_members);

/// Legacy nested-adjacency entry (abstract-graph benches/experiments):
/// converts to CSR once and runs the flat flood fill.
[[nodiscard]] Algorithm1Verdict algorithm1(
    std::span<const std::vector<std::uint32_t>> adjacency,
    std::span<const double> scores, std::span<const std::size_t> site_members);

struct VerificationResult {
  /// Viewmap member indices inside the site, as discovered (set X).
  std::vector<std::size_t> site_members;
  /// Subset of X judged legitimate (videos worth soliciting).
  std::vector<std::size_t> legitimate;
  /// Subset of X rejected as fake.
  std::vector<std::size_t> rejected;
  /// Full TrustRank output, exposed for analysis benches.
  TrustRankResult ranks;

  [[nodiscard]] bool is_legitimate(std::size_t member_index) const;
};

class Verifier {
 public:
  explicit Verifier(TrustRankConfig cfg = {}) : cfg_(cfg) {}

  /// Pure function of the viewmap: TrustRank and the Algorithm-1 flood
  /// fill both consume the viewmap's CSR view directly (zero adjacency
  /// copies on this path). A viewmap built over a DbSnapshot pins it,
  /// so verification (and the result's member indices) cannot race
  /// concurrent ingest or retention eviction — the whole investigation
  /// chain reads one immutable view.
  [[nodiscard]] VerificationResult verify(const Viewmap& map,
                                          const geo::Rect& site) const;

 private:
  TrustRankConfig cfg_;
};

}  // namespace viewmap::sys
