// The system's View Profile database (paper §4).
//
// Stores anonymously uploaded VPs (actual and guard VPs are
// indistinguishable and treated identically — §5.2.1 fn.4) plus trusted
// VPs from authority vehicles. Uploads pass a structural well-formedness
// screen; nothing about the uploader is retained.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "geo/geometry.h"
#include "vp/view_profile.h"

namespace viewmap::sys {

class VpDatabase {
 public:
  explicit VpDatabase(vp::VpUploadPolicy policy = {}) : policy_(policy) {}

  /// Screens and stores an anonymous VP. Returns false when the VP is
  /// malformed or its identifier collides with an existing entry.
  bool upload(vp::ViewProfile profile);

  /// Registers a trusted VP (police car etc.). Trusted uploads arrive over
  /// an authenticated channel, so no anonymity screen — but the same
  /// structural rules apply.
  bool upload_trusted(vp::ViewProfile profile);

  [[nodiscard]] const vp::ViewProfile* find(const Id16& vp_id) const noexcept;
  [[nodiscard]] bool is_trusted(const Id16& vp_id) const noexcept;

  /// All VPs covering unit-time `t` with any claimed location inside
  /// `area`. Trusted VPs included.
  [[nodiscard]] std::vector<const vp::ViewProfile*> query(TimeSec unit_time,
                                                          const geo::Rect& area) const;

  /// All trusted VPs covering unit-time `t`.
  [[nodiscard]] std::vector<const vp::ViewProfile*> trusted_at(TimeSec unit_time) const;

  [[nodiscard]] std::size_t size() const noexcept { return profiles_.size(); }
  [[nodiscard]] std::size_t trusted_count() const noexcept { return trusted_.size(); }

  /// Every stored VP (evaluation harnesses iterate the whole dataset, e.g.
  /// the §6.2.2 tracking analysis runs against the raw database).
  [[nodiscard]] std::vector<const vp::ViewProfile*> all() const;

  /// Identifiers of all trusted VPs (persistence and audit tooling).
  [[nodiscard]] std::vector<Id16> trusted_ids() const;

 private:
  bool insert(vp::ViewProfile profile, bool trusted);

  vp::VpUploadPolicy policy_;
  std::unordered_map<Id16, vp::ViewProfile, Id16Hasher> profiles_;
  std::unordered_map<Id16, bool, Id16Hasher> trusted_;  // set semantics
};

}  // namespace viewmap::sys
