// The system's View Profile database (paper §4).
//
// Stores anonymously uploaded VPs (actual and guard VPs are
// indistinguishable and treated identically — §5.2.1 fn.4) plus trusted
// VPs from authority vehicles. Uploads pass a structural well-formedness
// screen; nothing about the uploader is retained.
//
// Storage is the spatio-temporal index (src/index/): VPs live in
// per-unit-time shards, each spatially indexed over the claimed
// trajectories, with a retention window matching how long dashcams keep
// video. upload() is thread-safe and lock-striped so the batched ingest
// engine can commit from many threads at once (see index/ingest_engine.h).
//
// Reads go through snapshot(): an immutable pinned view of the database
// whose query results stay valid — across concurrent uploads, retention
// eviction, even destruction of this VpDatabase — until the snapshot is
// released. One investigation takes one snapshot; there is no pointer-
// lifetime caveat anywhere on the read surface. A snapshot's memory
// semantics: it pins the shards it was built from, so shards evicted (or
// copy-on-write-replaced) while it is held stay alive exactly until its
// last copy is destroyed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "geo/geometry.h"
#include "index/timeline.h"
#include "vp/view_profile.h"

namespace viewmap::sys {

/// The snapshot type served by VpDatabase::snapshot() (see
/// index/db_snapshot.h for the full read API and lifetime contract).
using DbSnapshot = index::DbSnapshot;

class VpDatabase {
 public:
  explicit VpDatabase(vp::VpUploadPolicy policy = {},
                      index::TimelineConfig index_cfg = {})
      : policy_(policy), timeline_(index_cfg) {}

  /// Screens and stores an anonymous VP. Returns false when the VP is
  /// malformed, claims a unit-time implausibly far from the trusted clock
  /// (see advance_clock), or its identifier collides with an existing
  /// entry.
  bool upload(vp::ViewProfile profile);

  /// Registers a trusted VP (police car etc.). Trusted uploads arrive over
  /// an authenticated channel, so no anonymity screen — but the same
  /// structural rules apply. Advances the retention clock to the VP's
  /// unit-time (authenticated timestamps are trusted; a device with a
  /// corrupt far-future RTC therefore poisons the clock — reset_clock()
  /// is the recovery path).
  bool upload_trusted(vp::ViewProfile profile);

  /// Feeds the trusted retention clock (monotonic; see
  /// index::VpTimeline::advance_clock). Retention eviction and the upload
  /// timeliness screen are measured from this clock — never from
  /// timestamps claimed inside anonymous uploads.
  void advance_clock(TimeSec now) noexcept { timeline_.advance_clock(now); }
  /// Operator recovery: force-sets the clock non-monotonically (see
  /// index::VpTimeline::reset_clock).
  void reset_clock(TimeSec now) noexcept { timeline_.reset_clock(now); }

  /// Re-admits a profile from a snapshot (store/vp_store). Runs the
  /// structural screen but NOT the upload timeliness screen: snapshot
  /// profiles were admitted by the live service already, and trusted
  /// profiles restored mid-stream advance the clock, which must not
  /// retro-reject anonymous profiles saved alongside them.
  bool restore(vp::ViewProfile profile, bool trusted);
  [[nodiscard]] TimeSec trusted_now() const noexcept { return timeline_.trusted_now(); }

  /// The read API: an immutable pinned view of the whole database.
  /// query()/find()/trusted_at()/all() results obtained from the snapshot
  /// stay valid for the snapshot's lifetime, fully concurrent with
  /// uploads and retention eviction. Cheap — O(live shards) refcount
  /// bumps, no profile copies.
  [[nodiscard]] DbSnapshot snapshot() const { return timeline_.snapshot(); }

  /// Point lookup returning an owning reference: the profile stays alive
  /// for as long as the caller holds it, independent of eviction. Null
  /// when absent.
  [[nodiscard]] std::shared_ptr<const vp::ViewProfile> find(const Id16& vp_id) const {
    return timeline_.find(vp_id);
  }
  [[nodiscard]] bool is_trusted(const Id16& vp_id) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return timeline_.size(); }
  [[nodiscard]] std::size_t trusted_count() const noexcept {
    return timeline_.trusted_count();
  }

  /// The structural screen applied to every upload (the ingest engine
  /// runs it in its worker threads).
  [[nodiscard]] const vp::VpUploadPolicy& policy() const noexcept { return policy_; }

  /// The underlying spatio-temporal index (ingest engine, persistence,
  /// inspection tooling). Inserting through the timeline directly skips
  /// the upload screen — only do that with screened profiles.
  [[nodiscard]] index::VpTimeline& timeline() noexcept { return timeline_; }
  [[nodiscard]] const index::VpTimeline& timeline() const noexcept { return timeline_; }

  /// Per-unit-time shard census, ordered by unit-time.
  [[nodiscard]] std::vector<index::ShardStats> shard_stats() const {
    return timeline_.shard_stats();
  }

  /// Drops shards older than the configured retention window, measured
  /// from the trusted clock (no-op until advance_clock()/upload_trusted()
  /// has set it). Returns evicted VP count. Held snapshots are unaffected:
  /// they keep their shards alive until released.
  std::size_t enforce_retention() { return timeline_.enforce_retention(); }

 private:
  vp::VpUploadPolicy policy_;
  index::VpTimeline timeline_;
};

}  // namespace viewmap::sys
