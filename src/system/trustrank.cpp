#include "system/trustrank.h"

#include <cmath>
#include <stdexcept>

namespace viewmap::sys {

TrustRankResult trust_rank(std::span<const std::vector<std::uint32_t>> adjacency,
                           std::span<const std::size_t> seeds,
                           const TrustRankConfig& cfg) {
  const std::size_t n = adjacency.size();
  if (seeds.empty()) throw std::invalid_argument("trust_rank: no trust seeds");
  if (cfg.damping <= 0.0 || cfg.damping >= 1.0)
    throw std::invalid_argument("trust_rank: damping must be in (0,1)");

  std::vector<double> d(n, 0.0);
  const double seed_mass = 1.0 / static_cast<double>(seeds.size());
  for (std::size_t s : seeds) d.at(s) = seed_mass;

  TrustRankResult result;
  result.scores = d;  // P initialized to d (Algorithm 1)
  std::vector<double> next(n, 0.0);

  for (int iter = 0; iter < cfg.max_iterations; ++iter) {
    // next = δ·M·P + (1−δ)·d, with M[u][v] = 1/deg(v) along undirected
    // edges: each VP pushes its score equally over its incident edges.
    for (std::size_t u = 0; u < n; ++u) next[u] = (1.0 - cfg.damping) * d[u];
    for (std::size_t v = 0; v < n; ++v) {
      const auto& nbrs = adjacency[v];
      if (nbrs.empty()) continue;
      const double share = cfg.damping * result.scores[v] / static_cast<double>(nbrs.size());
      for (std::uint32_t u : nbrs) next[u] += share;
    }

    double delta = 0.0;
    for (std::size_t u = 0; u < n; ++u) delta += std::abs(next[u] - result.scores[u]);
    result.scores.swap(next);
    result.iterations = iter + 1;
    if (delta < cfg.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

TrustRankResult trust_rank(const Viewmap& map, const TrustRankConfig& cfg) {
  std::vector<std::vector<std::uint32_t>> adjacency;
  adjacency.reserve(map.size());
  for (std::size_t i = 0; i < map.size(); ++i) {
    auto nbrs = map.neighbors(i);
    adjacency.emplace_back(nbrs.begin(), nbrs.end());
  }
  const auto seeds = map.trusted_indices();
  return trust_rank(adjacency, seeds, cfg);
}

}  // namespace viewmap::sys
