#include "system/trustrank.h"

#include <cmath>
#include <stdexcept>

#include "obs/trace.h"

namespace viewmap::sys {

TrustRankResult trust_rank(const CsrGraph& graph, std::span<const std::size_t> seeds,
                           const TrustRankConfig& cfg) {
  const std::size_t n = graph.size();
  if (seeds.empty()) throw std::invalid_argument("trust_rank: no trust seeds");
  if (cfg.damping <= 0.0 || cfg.damping >= 1.0)
    throw std::invalid_argument("trust_rank: damping must be in (0,1)");
  for (const std::size_t s : seeds)
    if (s >= n) throw std::invalid_argument("trust_rank: seed index out of range");

  std::vector<double> d(n, 0.0);
  const double seed_mass = 1.0 / static_cast<double>(seeds.size());
  for (const std::size_t s : seeds) d[s] = seed_mass;

  TrustRankResult result;
  result.scores = d;  // P initialized to d (Algorithm 1)
  std::vector<double> next(n, 0.0);

  // Hot loop on the raw flat arrays: offsets/edges stream linearly and
  // the score reads/writes are plain indexed loads — seeds were
  // validated above and CsrGraph guarantees every edge target < n, so
  // nothing here needs a checked access.
  const std::size_t* offsets = graph.offsets().data();
  const std::uint32_t* edges = graph.edges().data();
  double* score = result.scores.data();

  for (int iter = 0; iter < cfg.max_iterations; ++iter) {
    // next = δ·M·P + (1−δ)·d, with M[u][v] = 1/deg(v) along undirected
    // edges: each VP pushes its score equally over its incident edges.
    for (std::size_t u = 0; u < n; ++u) next[u] = (1.0 - cfg.damping) * d[u];
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t begin = offsets[v];
      const std::size_t end = offsets[v + 1];
      if (begin == end) continue;
      const double share = cfg.damping * score[v] / static_cast<double>(end - begin);
      for (std::size_t k = begin; k < end; ++k) next[edges[k]] += share;
    }

    double delta = 0.0;
    for (std::size_t u = 0; u < n; ++u) delta += std::abs(next[u] - score[u]);
    result.scores.swap(next);
    score = result.scores.data();
    result.iterations = iter + 1;
    if (delta < cfg.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

TrustRankResult trust_rank(std::span<const std::vector<std::uint32_t>> adjacency,
                           std::span<const std::size_t> seeds,
                           const TrustRankConfig& cfg) {
  return trust_rank(CsrGraph::from_adjacency(adjacency), seeds, cfg);
}

TrustRankResult trust_rank(const Viewmap& map, const TrustRankConfig& cfg) {
  // The investigation-path entry point — the low-level overloads stay
  // span-free so direct benchmarks measure the bare iteration.
  obs::SpanScope obs_span("trust_rank");
  const auto seeds = map.trusted_indices();
  return trust_rank(map.graph(), seeds, cfg);
}

}  // namespace viewmap::sys
