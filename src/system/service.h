// ViewMapService — the public-service system facade (paper Fig. 2).
//
// Ties the pipeline together end to end:
//   anonymous VP uploads → VP database → viewmap construction →
//   Algorithm-1 verification → video solicitation → cascaded-hash video
//   validation → human review → untraceable reward issuance.
//
// The facade is what example programs and integration tests drive; each
// stage is also usable on its own (see the per-module headers).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "anonet/channel.h"
#include "index/ingest_engine.h"
#include "obs/trace.h"
#include "reward/bank.h"
#include "system/result_cache.h"
#include "system/solicitation.h"
#include "system/verifier.h"
#include "system/viewmap_graph.h"
#include "system/vp_database.h"
#include "vp/video.h"
#include "vp/view_profile.h"

namespace viewmap::store {
class SegmentStore;       // store/segment_store.h
struct CheckpointStats;   //   (callers of the persistence API include it)
struct RecoveryStats;
}  // namespace viewmap::store

namespace viewmap::obs {
class MetricsRegistry;  // obs/metrics.h
class Histogram;
}  // namespace viewmap::obs

namespace viewmap::sys {

class InvestigationServer;  // system/investigation_server.h
struct ServerConfig;

struct ServiceConfig {
  /// Viewmap construction knobs, including build_threads — the in-build
  /// parallelism every investigation entry point (direct investigate(),
  /// investigate_period(), and the InvestigationServer workers) builds
  /// with. See src/system/README.md §"Viewmap construction pipeline".
  ViewmapConfig viewmap{};
  TrustRankConfig trustrank{};
  viewmap::index::TimelineConfig index{};  ///< shard grid + retention window
  viewmap::index::IngestConfig ingest{};   ///< batched concurrent upload ingest
  int rsa_bits = 2048;
  std::uint64_t channel_seed = 0x5eed;
  std::size_t mix_pool = 16;
  /// Digest-keyed investigation result cache (system/result_cache.h):
  /// a repeat investigate() over an unchanged minute shard returns the
  /// cached report instead of rebuilding — bit-identical by key
  /// construction. Enabled by default; set enabled=false or
  /// capacity_bytes=0 for the pre-cache behavior (benches compare both).
  ResultCacheConfig result_cache{};
  /// Metrics registry every subsystem publishes into (ingest counters,
  /// timeline gauges, server histograms, store checkpoint stats). Null —
  /// the default — makes the service allocate and own a fresh one;
  /// supply your own to aggregate several components into one
  /// exposition (not owned, must outlive the service). Either way
  /// metrics()/dump_metrics() work; instrumentation is always on at the
  /// service level (the per-component null-registry switch exists for
  /// direct component users and the obs_overhead bench).
  obs::MetricsRegistry* metrics = nullptr;
  /// How many slowest investigation traces the service's Tracer retains
  /// for inspection (tools/viewmap_metrics renders them).
  std::size_t slow_trace_keep = 16;
};

/// Outcome of one investigation over one unit-time.
struct InvestigationReport {
  Viewmap viewmap;
  VerificationResult verification;
  std::vector<Id16> solicited;  ///< VP ids posted as 'request for video'
  /// Per-phase timing of this investigation (snapshot_pin when served by
  /// the investigation server, member_select, candidate_grid, edge_build,
  /// csr_build, trust_rank, algorithm1, solicit). The same trace competes
  /// for the service Tracer's slowest-N ring.
  obs::Trace trace;
};

class ViewMapService {
 public:
  explicit ViewMapService(const ServiceConfig& cfg = {});
  /// Stops the investigation server (if started) before members die.
  ~ViewMapService();
  ViewMapService(const ViewMapService&) = delete;
  ViewMapService& operator=(const ViewMapService&) = delete;

  // ── upload path ────────────────────────────────────────────────────
  /// The anonymous channel users submit serialized VPs through.
  [[nodiscard]] anonet::AnonymousChannel& upload_channel() noexcept { return channel_; }

  /// Drains the channel into the database through the concurrent ingest
  /// engine (parallel parse + screen, striped-lock shard commit, retention
  /// eviction). Returns how many VPs were accepted (malformed, untimely,
  /// or duplicate payloads are dropped). Retention runs after the batch,
  /// measured from the trusted clock (see advance_clock). Safe to run
  /// concurrently with investigate()/investigate_period(): reads go
  /// through pinned DbSnapshots, which eviction cannot invalidate.
  std::size_t ingest_uploads();

  /// Feeds the trusted wall-clock that drives retention eviction and the
  /// upload timeliness screen. register_trusted() advances it implicitly;
  /// anonymous uploads never do.
  void advance_clock(TimeSec now) noexcept { db_.advance_clock(now); }
  /// Operator recovery for a poisoned clock (e.g. an authority device with
  /// a corrupt far-future RTC): force-sets it non-monotonically.
  void reset_clock(TimeSec now) noexcept { db_.reset_clock(now); }

  /// Full statistics of the most recent ingest_uploads() call. Returned
  /// by value: it reflects the single control thread's last call, and a
  /// copy can never be torn by the next one.
  [[nodiscard]] index::IngestStats last_ingest() const noexcept {
    return last_ingest_;
  }

  /// Cumulative ingest statistics over the service's lifetime — a thin
  /// snapshot view over the metrics registry's ingest counters (offset
  /// by their values at construction, so a shared registry still reads
  /// per-service). Safe to call from any thread at any time; each field
  /// is a race-free sharded-counter sum, exact once ingest quiesces.
  [[nodiscard]] index::IngestStats ingest_totals() const noexcept;

  /// Authenticated path for authority vehicles (police cars).
  bool register_trusted(vp::ViewProfile profile);

  [[nodiscard]] const VpDatabase& database() const noexcept { return db_; }

  // ── persistence (store/segment_store.h) ────────────────────────────
  /// Seals one incremental checkpoint of the database into `store`: pins
  /// one DbSnapshot and writes segments only for shards that are new or
  /// changed since the store's previous manifest. Fully concurrent with
  /// ingest_uploads(), retention eviction, direct investigations, and a
  /// running InvestigationServer — the snapshot is immutable however long
  /// the write takes, so each checkpoint is byte-deterministic for the
  /// database version it pinned. One checkpointer at a time per store
  /// (same single-caller contract as ingest_uploads()).
  store::CheckpointStats checkpoint(store::SegmentStore& store) const;

  /// Replaces the database with the newest recoverable checkpoint in
  /// `store`, preserving this service's upload policy and index (grid /
  /// retention) configuration so screening and eviction resume exactly as
  /// configured. Restart path only: must not run concurrently with
  /// anything else touching the service (stop_server() first).
  store::RecoveryStats restore_from(const store::SegmentStore& store);

  /// Point-in-time variant: restores exactly the checkpoint sealed under
  /// manifest `sequence` (see SegmentStore::recover(sequence)). Unlike
  /// the newest-recoverable overload this never falls back — a missing
  /// or damaged named manifest throws and the live database is left
  /// untouched. Same restart-path-only contract as above.
  store::RecoveryStats restore_from(const store::SegmentStore& store,
                                    std::uint64_t sequence);

  // ── investigation path ─────────────────────────────────────────────
  /// Builds the viewmap for (site, unit_time), verifies it, and posts
  /// 'request for video' for every legitimate VP found inside the site.
  /// Takes one DbSnapshot for the whole investigation, so it runs fully
  /// concurrent with ingest_uploads() and retention eviction; the
  /// returned report stays valid indefinitely (the viewmap pins the
  /// snapshot).
  [[nodiscard]] InvestigationReport investigate(const geo::Rect& site,
                                                TimeSec unit_time);
  /// Same, over a caller-supplied snapshot — lets one pinned view serve
  /// many investigations (investigate_period(), replay tooling). Safe to
  /// call from many threads at once: it reads the snapshot and const
  /// configuration, and publishes solicitations through the thread-safe
  /// NoticeBoard — this is the entry point the investigation server's
  /// workers drive in parallel.
  [[nodiscard]] InvestigationReport investigate(const DbSnapshot& snap,
                                                const geo::Rect& site,
                                                TimeSec unit_time);

  /// §5.2.1: an incident period is investigated as "a series of viewmaps
  /// each corresponding to a single unit-time". Takes ONE snapshot for
  /// the whole period (every minute sees the same consistent database
  /// state) and runs investigate() for every whole minute in
  /// [begin, end); minutes without a trusted VP (unverifiable) are
  /// skipped.
  [[nodiscard]] std::vector<InvestigationReport> investigate_period(
      const geo::Rect& site, TimeSec begin, TimeSec end);
  /// Same, over a caller-supplied snapshot (the investigation server's
  /// workers serve whole request batches from one pinned view this way).
  /// Thread-safe like the snapshot investigate() overload.
  [[nodiscard]] std::vector<InvestigationReport> investigate_period(
      const DbSnapshot& snap, const geo::Rect& site, TimeSec begin, TimeSec end);

  [[nodiscard]] const NoticeBoard& board() const noexcept { return board_; }

  // ── investigation server (system/investigation_server.h) ──────────
  /// Starts the multi-threaded investigation front: a worker pool
  /// draining a bounded request queue of submit()/submit_period()
  /// investigations, fully concurrent with ingest_uploads() and
  /// retention. Returns the running server; if one is already running it
  /// is returned unchanged (stop_server() first to apply a new config).
  ///
  /// Lifecycle contract: start_server()/stop_server()/server() manage
  /// the server *object* and must be driven from one control thread
  /// (like ingest_uploads()); they are not synchronized against each
  /// other. The running server's own API (submit/pause/stop/stats/…) is
  /// fully thread-safe — any number of submitter threads is fine.
  InvestigationServer& start_server();
  InvestigationServer& start_server(const ServerConfig& cfg);
  /// Rejects new submissions, drains queued requests, joins the workers,
  /// destroys the server. No-op when no server is running.
  void stop_server();
  /// The running server, or nullptr.
  [[nodiscard]] InvestigationServer* server() noexcept { return server_.get(); }

  /// User side poll: which of my VP ids have a pending video request?
  [[nodiscard]] std::vector<Id16> pending_video_requests(
      std::span<const Id16> my_vp_ids) const;

  // ── video path ─────────────────────────────────────────────────────
  /// Anonymous video upload. Validates the cascaded hash chain against the
  /// stored VP; on success the video enters the human-review queue and the
  /// request is withdrawn from the board.
  bool submit_video(const Id16& vp_id, const vp::RecordedVideo& video);

  /// Videos awaiting human review (investigators pop from here).
  [[nodiscard]] std::span<const Id16> review_queue() const noexcept { return review_; }

  /// Human review verdict. Approval posts 'request for reward' worth
  /// `units` of virtual cash.
  void conclude_review(const Id16& vp_id, bool approved, int units);

  // ── reward path (Appendix A) ───────────────────────────────────────
  /// Step 1: the owner proves ownership by revealing Q (R = H(Q)). On
  /// success returns the cash amount n granted for this video.
  [[nodiscard]] std::optional<int> begin_reward_claim(const Id16& vp_id,
                                                      const vp::VpSecret& secret);

  /// Step 3: blind-sign the claimant's batch. The claim must have begun
  /// and the batch size must equal the granted amount.
  [[nodiscard]] std::optional<std::vector<crypto::BigBytes>> sign_reward_batch(
      const Id16& vp_id, std::span<const crypto::BigBytes> blinded);

  [[nodiscard]] const crypto::RsaPublicKey& cash_public_key() const noexcept {
    return bank_.public_key();
  }
  [[nodiscard]] reward::Bank& bank() noexcept { return bank_; }

  // ── observability (obs/metrics.h, obs/trace.h) ─────────────────────
  /// The registry every subsystem publishes into (owned unless one was
  /// supplied via ServiceConfig::metrics). Stable for the service's
  /// lifetime; see src/obs/README.md for the metric name catalogue.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return *metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return *metrics_;
  }
  /// Prometheus-style text exposition of every metric, plus nothing
  /// else — pipe to a file or scrape endpoint.
  void dump_metrics(std::ostream& os) const;
  /// Keeper of the slowest-N investigation traces.
  [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const obs::Tracer& tracer() const noexcept { return tracer_; }
  /// The investigation result cache (never null; may be disabled —
  /// see ServiceConfig::result_cache). stats() is how tests and the
  /// bench assert hit rates and the byte bound.
  [[nodiscard]] ResultCache& result_cache() noexcept { return cache_; }
  [[nodiscard]] const ResultCache& result_cache() const noexcept { return cache_; }

 private:
  /// Owns the registry when ServiceConfig::metrics was null. Declared
  /// first: every member below may hold pointers into it.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  ServiceConfig cfg_;
  obs::MetricsRegistry* metrics_ = nullptr;  ///< == cfg_.metrics, never null
  anonet::AnonymousChannel channel_;
  VpDatabase db_;
  ViewmapBuilder builder_;
  Verifier verifier_;
  NoticeBoard board_;
  reward::Bank bank_;
  obs::Tracer tracer_;
  ResultCache cache_;  ///< digest-keyed investigation result cache
  index::IngestMetrics ingest_metrics_;  ///< registry handles + name catalogue
  index::IngestStats ingest_base_;       ///< registry values at construction
  obs::Histogram* investigate_us_ = nullptr;
  obs::Histogram* cache_hit_us_ = nullptr;  ///< latency of cache-served hits
  index::IngestStats last_ingest_;
  /// Debug-build enforcement of the ingest_uploads() single-caller
  /// contract (see common/reentrancy.h). Header always declares it so
  /// NDEBUG and debug TUs agree on the object layout.
  std::atomic<bool> ingest_entered_{false};
  std::vector<Id16> review_;
  std::unordered_map<Id16, int, Id16Hasher> granted_;  ///< open claims: id → n
  /// Declared last: its workers reference the members above, so it must
  /// be destroyed first (the destructor also stops it explicitly).
  std::unique_ptr<InvestigationServer> server_;
};

}  // namespace viewmap::sys
