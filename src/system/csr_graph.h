// Flat compressed-sparse-row adjacency for viewmap-scale graphs.
//
// The investigation hot path (TrustRank power iteration, Algorithm-1
// flood fill, isolation BFS) iterates every edge of every viewmap many
// times per request. A vector-of-vectors adjacency costs one heap node
// per member and a pointer chase per node visit; CSR keeps the whole
// graph in two contiguous arrays — node i's neighbors are
// edges[offsets[i] .. offsets[i+1]), ascending — so the power iteration
// streams cache-linearly and the graph is built in one allocation pass.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace viewmap::sys {

/// Immutable CSR adjacency over nodes [0, n). Undirected graphs store
/// both directions (edge_slots() == 2 × undirected edge count).
class CsrGraph {
 public:
  /// Empty graph with zero nodes.
  CsrGraph() = default;

  /// Takes ownership of prebuilt arrays: n+1 offsets, front() == 0,
  /// non-decreasing, back() == edges.size(), every edge target < n.
  /// Throws std::invalid_argument otherwise.
  CsrGraph(std::vector<std::size_t> offsets, std::vector<std::uint32_t> edges);

  /// One-pass conversion from nested adjacency (the legacy shape the
  /// abstract-graph tests, benches, and attack experiments build).
  static CsrGraph from_adjacency(std::span<const std::vector<std::uint32_t>> adjacency);

  [[nodiscard]] std::size_t size() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t i) const noexcept {
    return {edges_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }
  [[nodiscard]] std::size_t degree(std::size_t i) const noexcept {
    return offsets_[i + 1] - offsets_[i];
  }
  /// Directed edge slots (2× the undirected edge count).
  [[nodiscard]] std::size_t edge_slots() const noexcept { return edges_.size(); }

  /// The flat arrays, exposed for the hot loops and the edge-set
  /// equivalence tests.
  [[nodiscard]] std::span<const std::size_t> offsets() const noexcept { return offsets_; }
  [[nodiscard]] std::span<const std::uint32_t> edges() const noexcept { return edges_; }

  friend bool operator==(const CsrGraph&, const CsrGraph&) = default;

 private:
  std::vector<std::size_t> offsets_;  ///< n+1 entries; empty ⇔ n == 0
  std::vector<std::uint32_t> edges_;
};

}  // namespace viewmap::sys
