#include "system/result_cache.h"

#include <bit>
#include <utility>

#include "obs/metrics.h"

namespace viewmap::sys {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::size_t ResultCache::KeyHasher::operator()(const Key& k) const noexcept {
  std::uint64_t h = kFnvOffset;
  h = fnv_u64(h, static_cast<std::uint64_t>(k.unit_time));
  h = fnv_u64(h, std::bit_cast<std::uint64_t>(k.site.min.x));
  h = fnv_u64(h, std::bit_cast<std::uint64_t>(k.site.min.y));
  h = fnv_u64(h, std::bit_cast<std::uint64_t>(k.site.max.x));
  h = fnv_u64(h, std::bit_cast<std::uint64_t>(k.site.max.y));
  for (std::size_t i = 0; i < k.digest.bytes.size(); i += 8) {
    std::uint64_t v = 0;
    for (std::size_t j = 0; j < 8; ++j)
      v |= static_cast<std::uint64_t>(k.digest.bytes[i + j]) << (8 * j);
    h = fnv_u64(h, v);
  }
  return static_cast<std::size_t>(h);
}

ResultCache::ResultCache(const ResultCacheConfig& cfg) : cfg_(cfg) {
  if (cfg_.metrics != nullptr) {
    hits_c_ = &cfg_.metrics->counter("viewmap_cache_hits_total");
    misses_c_ = &cfg_.metrics->counter("viewmap_cache_misses_total");
    insertions_c_ = &cfg_.metrics->counter("viewmap_cache_insertions_total");
    evictions_c_ = &cfg_.metrics->counter("viewmap_cache_evictions_total");
    bytes_g_ = &cfg_.metrics->gauge("viewmap_cache_bytes");
    entries_g_ = &cfg_.metrics->gauge("viewmap_cache_entries");
  }
}

std::size_t ResultCache::estimate_bytes(const CachedInvestigation& e) noexcept {
  const Viewmap& map = e.viewmap;
  const VerificationResult& v = e.verification;
  std::size_t n = 0;
  n += map.size() * sizeof(void*);        // member pointer array
  n += map.size() / 8 + 8;                // trusted bitset
  n += map.graph().offsets().size() * sizeof(std::size_t);
  n += map.graph().edges().size() * sizeof(std::uint32_t);
  n += (v.site_members.size() + v.legitimate.size() + v.rejected.size()) *
       sizeof(std::size_t);
  n += v.ranks.scores.size() * sizeof(double);
  n += e.solicited.size() * sizeof(Id16);
  n += 320;  // node, map slot, control blocks, vector headers
  return n;
}

std::shared_ptr<const CachedInvestigation> ResultCache::find(const Key& key) {
  if (!enabled()) return nullptr;
  std::lock_guard lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end() || it->second.list == ListId::kB1 ||
      it->second.list == ListId::kB2) {
    // A ghost hit is still a miss for the caller; the adaptive nudge
    // happens when the rebuilt entry comes back through insert().
    ++misses_;
    if (misses_c_ != nullptr) misses_c_->add(1);
    return nullptr;
  }
  Slot& slot = it->second;
  // Second touch: whatever list it was on, it is frequent now.
  if (slot.list == ListId::kT1) {
    t1_bytes_ -= slot.it->bytes;
    t2_bytes_ += slot.it->bytes;
    t2_.splice(t2_.begin(), t1_, slot.it);
    slot.list = ListId::kT2;
  } else {
    t2_.splice(t2_.begin(), t2_, slot.it);
  }
  ++hits_;
  if (hits_c_ != nullptr) hits_c_->add(1);
  return slot.it->value;  // the report copy happens outside the lock
}

void ResultCache::insert(const Key& key, std::shared_ptr<CachedInvestigation> value) {
  if (!enabled() || value == nullptr) return;
  const std::size_t bytes = estimate_bytes(*value);
  value->bytes = bytes;
  if (bytes > cfg_.capacity_bytes) return;  // would evict the whole cache
  std::shared_ptr<const CachedInvestigation> stored = std::move(value);

  std::lock_guard lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    switch (it->second.list) {
      case ListId::kT1:
      case ListId::kT2:
        // Already resident: a racing builder got here first with a
        // bit-identical report (same digest ⇒ same inputs). Keep it.
        return;
      case ListId::kB1:
        // The recency list would have kept this key — grow its share.
        p_ = std::min(cfg_.capacity_bytes, p_ + std::max<std::size_t>(bytes, 1));
        detach(key, ListId::kB1, it->second.it);
        break;
      case ListId::kB2:
        // The frequency list would have kept it — shrink T1's share.
        p_ = p_ > bytes ? p_ - bytes : 0;
        detach(key, ListId::kB2, it->second.it);
        break;
    }
    // A ghost re-insert was "seen twice": resident on T2.
    t2_.push_front(Node{key, std::move(stored), bytes});
    t2_bytes_ += bytes;
    index_.emplace(key, Slot{ListId::kT2, t2_.begin()});
  } else {
    t1_.push_front(Node{key, std::move(stored), bytes});
    t1_bytes_ += bytes;
    index_.emplace(key, Slot{ListId::kT1, t1_.begin()});
  }
  ++insertions_;
  if (insertions_c_ != nullptr) insertions_c_->add(1);
  enforce_bounds();
  publish_gauges();
}

void ResultCache::clear() {
  std::lock_guard lock(mu_);
  index_.clear();
  t1_.clear();
  t2_.clear();
  b1_.clear();
  b2_.clear();
  t1_bytes_ = t2_bytes_ = b1_bytes_ = b2_bytes_ = 0;
  p_ = 0;
  publish_gauges();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.resident_bytes = t1_bytes_ + t2_bytes_;
  s.resident_entries = t1_.size() + t2_.size();
  s.ghost_entries = b1_.size() + b2_.size();
  return s;
}

void ResultCache::detach(const Key& key, ListId list, NodeList::iterator it) {
  switch (list) {
    case ListId::kT1: t1_bytes_ -= it->bytes; t1_.erase(it); break;
    case ListId::kT2: t2_bytes_ -= it->bytes; t2_.erase(it); break;
    case ListId::kB1: b1_bytes_ -= it->bytes; b1_.erase(it); break;
    case ListId::kB2: b2_bytes_ -= it->bytes; b2_.erase(it); break;
  }
  index_.erase(key);
}

void ResultCache::evict_one_resident() {
  // ARC replace(): T1 yields while it holds more than its target p,
  // T2 yields otherwise. The evicted key leaves a ghost with its byte
  // weight so a later re-insert can steer p.
  const bool from_t1 = !t1_.empty() && (t1_bytes_ > p_ || t2_.empty());
  NodeList& from = from_t1 ? t1_ : t2_;
  NodeList& ghost = from_t1 ? b1_ : b2_;
  auto victim = std::prev(from.end());
  const std::size_t bytes = victim->bytes;
  victim->value.reset();  // the report itself (and its pinned shard) dies here
  ghost.splice(ghost.begin(), from, victim);
  index_[victim->key] = Slot{from_t1 ? ListId::kB1 : ListId::kB2, victim};
  if (from_t1) {
    t1_bytes_ -= bytes;
    b1_bytes_ += bytes;
  } else {
    t2_bytes_ -= bytes;
    b2_bytes_ += bytes;
  }
  ++evictions_;
  if (evictions_c_ != nullptr) evictions_c_->add(1);
}

void ResultCache::drop_ghost_lru(NodeList& list, std::size_t& bytes) {
  auto victim = std::prev(list.end());
  bytes -= victim->bytes;
  index_.erase(victim->key);
  list.erase(victim);
}

void ResultCache::enforce_bounds() {
  // Hard invariant first: resident bytes never exceed the budget.
  while (t1_bytes_ + t2_bytes_ > cfg_.capacity_bytes && !(t1_.empty() && t2_.empty()))
    evict_one_resident();
  // Ghost bounds (classic ARC, in bytes): |T1|+|B1| ≤ c, total ≤ 2c.
  while (t1_bytes_ + b1_bytes_ > cfg_.capacity_bytes && !b1_.empty())
    drop_ghost_lru(b1_, b1_bytes_);
  while (t1_bytes_ + t2_bytes_ + b1_bytes_ + b2_bytes_ > 2 * cfg_.capacity_bytes &&
         !b2_.empty())
    drop_ghost_lru(b2_, b2_bytes_);
}

void ResultCache::publish_gauges() const {
  if (bytes_g_ != nullptr)
    bytes_g_->set(static_cast<std::int64_t>(t1_bytes_ + t2_bytes_));
  if (entries_g_ != nullptr)
    entries_g_->set(static_cast<std::int64_t>(t1_.size() + t2_.size()));
}

}  // namespace viewmap::sys
