// ResultCache — digest-keyed cache of completed investigations.
//
// A public service at scale sees hot incidents: many overlapping
// (site, unit-time) requests while the underlying minute shards rarely
// change. The shard change identity (TimeShard::cache_key,
// index/db_snapshot.h — the content digest when already cached, else a
// per-shard generation stamp; O(1) either way) makes exact invalidation
// free: two investigations with the same site rectangle, the same
// unit-time, and the same shard key consume byte-identical inputs, so
// the second one can return the first one's report verbatim — no member
// select, no grid candidate pass, no edge build, no power iteration.
// Any ingest or eviction touching the minute changes the key, which
// misses; stale entries are never *served*, only aged out.
//
// Replacement is ARC-style (modeled on the NDN-DPDK content store's
// direct/indirect lists), adapted to byte accounting: resident entries
// live on a recency list (T1, seen once) or a frequency list (T2, seen
// twice or more); evicted keys leave a byte-free ghost on B1/B2, and a
// re-insert that hits a ghost steers the adaptive target `p` toward the
// list that would have kept it. Resident bytes never exceed
// capacity_bytes; ghosts are bounded by the same budget again.
//
// Thread-safety: one mutex guards the lists and the key map. The stored
// reports are shared_ptr<const …>, so the (comparatively expensive)
// report copy on a hit happens outside the lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "geo/geometry.h"
#include "system/verifier.h"
#include "system/viewmap_graph.h"

namespace viewmap::obs {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace viewmap::obs

namespace viewmap::sys {

struct ResultCacheConfig {
  /// Master switch. Disabled, find() always misses and insert() is a
  /// no-op — the service behaves exactly as before PR 10.
  bool enabled = true;
  /// Resident-entry byte budget (estimate_bytes accounting). 0 also
  /// disables the cache.
  std::size_t capacity_bytes = 64u << 20;
  /// Publishes viewmap_cache_* counters/gauges/histogram when non-null
  /// (the service wires its own registry in; see wire_config()).
  obs::MetricsRegistry* metrics = nullptr;
};

/// The cacheable part of an InvestigationReport. The trace is excluded
/// deliberately: it is timing-valued and records the serving path (a
/// cached report's new trace says "result_cache_hit" instead of the
/// build spans), so report bit-identity is defined over these three
/// fields. The Viewmap pins its minute's shard, so a cached entry keeps
/// that shard's profiles alive until evicted — bounded by the entry
/// count times the shard size, see src/system/README.md.
struct CachedInvestigation {
  Viewmap viewmap;
  VerificationResult verification;
  std::vector<Id16> solicited;
  /// estimate_bytes() of the three fields above, fixed at insert.
  std::size_t bytes = 0;
};

class ResultCache {
 public:
  /// (site cell, unit-time, shard change identity) — the full input
  /// fingerprint of one investigation. `digest` carries
  /// DbSnapshot::shard_cache_key's Hash32: the shard content digest when
  /// one was already cached, else the tagged generation stamp.
  struct Key {
    geo::Rect site{};
    TimeSec unit_time = 0;
    Hash32 digest{};

    friend bool operator==(const Key& a, const Key& b) noexcept {
      return a.unit_time == b.unit_time && a.digest == b.digest &&
             a.site.min.x == b.site.min.x && a.site.min.y == b.site.min.y &&
             a.site.max.x == b.site.max.x && a.site.max.y == b.site.max.y;
    }
  };

  struct KeyHasher {
    std::size_t operator()(const Key& k) const noexcept;
  };

  /// Torn-free snapshot of the cache counters (see stats()).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;   ///< resident entries pushed out (to ghosts)
    std::size_t resident_bytes = 0;
    std::size_t resident_entries = 0;
    std::size_t ghost_entries = 0;
  };

  explicit ResultCache(const ResultCacheConfig& cfg = {});

  [[nodiscard]] bool enabled() const noexcept {
    return cfg_.enabled && cfg_.capacity_bytes > 0;
  }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return cfg_.capacity_bytes;
  }

  /// Hit: promotes the entry to the frequency list's MRU position and
  /// returns it. Miss (or disabled): null. Never blocks on anything but
  /// the cache mutex.
  [[nodiscard]] std::shared_ptr<const CachedInvestigation> find(const Key& key);

  /// Inserts a freshly built report. Sets value->bytes. A key already
  /// resident is left as is (two racing builders produced bit-identical
  /// reports — the digest key guarantees it — so first-in wins). Entries
  /// larger than the whole budget are not cached. No-op when disabled.
  void insert(const Key& key, std::shared_ptr<CachedInvestigation> value);

  /// Drops everything (tests, operator reset). Stats survive.
  void clear();

  [[nodiscard]] Stats stats() const;

  /// Byte cost of one cached entry: the report's owned arrays plus a
  /// fixed per-entry overhead. Deliberately excludes the pinned shard
  /// (shared across entries of the same minute; documented separately).
  [[nodiscard]] static std::size_t estimate_bytes(const CachedInvestigation& e) noexcept;

 private:
  enum class ListId : std::uint8_t { kT1, kT2, kB1, kB2 };

  struct Node {
    Key key;
    std::shared_ptr<const CachedInvestigation> value;  ///< null on B1/B2
    std::size_t bytes = 0;  ///< resident bytes, or the bytes it had when evicted
  };

  using NodeList = std::list<Node>;
  struct Slot {
    ListId list;
    NodeList::iterator it;
  };

  // All private helpers assume mu_ is held.
  void detach(const Key& key, ListId list, NodeList::iterator it);
  void evict_one_resident();
  void drop_ghost_lru(NodeList& list, std::size_t& bytes);
  void enforce_bounds();
  void publish_gauges() const;

  ResultCacheConfig cfg_;

  mutable std::mutex mu_;
  std::unordered_map<Key, Slot, KeyHasher> index_;
  NodeList t1_, t2_, b1_, b2_;                    // MRU at front, LRU at back
  std::size_t t1_bytes_ = 0, t2_bytes_ = 0;       // resident
  std::size_t b1_bytes_ = 0, b2_bytes_ = 0;       // ghosts (bookkeeping only)
  std::size_t p_ = 0;  ///< adaptive byte target for T1, in [0, capacity]

  std::uint64_t hits_ = 0, misses_ = 0, insertions_ = 0, evictions_ = 0;

  // Registry handles, null when cfg_.metrics is null.
  obs::Counter* hits_c_ = nullptr;
  obs::Counter* misses_c_ = nullptr;
  obs::Counter* insertions_c_ = nullptr;
  obs::Counter* evictions_c_ = nullptr;
  obs::Gauge* bytes_g_ = nullptr;
  obs::Gauge* entries_g_ = nullptr;
};

}  // namespace viewmap::sys
