// TrustRank over viewmaps (paper §5.2.2, Algorithm 1).
//
// Trusted VPs act as trust seeds with the full initial probability mass;
// power iteration  P ← δ·M·P + (1−δ)·d  propagates scores across
// viewlinks, where M distributes a VP's score equally over its undirected
// edges and δ = 0.8. Fake layers receive trust only through the few edges
// attackers control, so their scores are bounded (Lemmas 1–2).
//
// The core runs on the flat CSR adjacency (system/csr_graph.h) with flat
// score arrays — the edge loop streams offsets/edges linearly, no
// per-node heap hops, no bounds-checked access, and no per-call copy of
// the viewmap's adjacency (the Viewmap overload consumes its CSR view
// directly).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "system/viewmap_graph.h"

namespace viewmap::sys {

struct TrustRankConfig {
  double damping = 0.8;    ///< δ, empirically set in the paper
  double tolerance = 1e-12;  ///< L1 convergence threshold
  int max_iterations = 10'000;
};

struct TrustRankResult {
  std::vector<double> scores;  ///< P, indexed by viewmap member
  int iterations = 0;
  bool converged = false;
};

/// Runs TrustRank on a CSR adjacency — the zero-copy hot path. `seeds`
/// receive the uniform (1−δ) reinjection mass; they must be non-empty
/// and in range (validated once, before the iteration).
[[nodiscard]] TrustRankResult trust_rank(const CsrGraph& graph,
                                         std::span<const std::size_t> seeds,
                                         const TrustRankConfig& cfg = {});

/// Legacy nested-adjacency entry (abstract-graph tests, benches, attack
/// experiments): converts to CSR once, then runs the flat core.
[[nodiscard]] TrustRankResult trust_rank(
    std::span<const std::vector<std::uint32_t>> adjacency,
    std::span<const std::size_t> seeds, const TrustRankConfig& cfg = {});

/// Convenience overload seeded at the viewmap's trusted members. Runs
/// directly on the viewmap's CSR — no adjacency copy of any kind.
[[nodiscard]] TrustRankResult trust_rank(const Viewmap& map,
                                         const TrustRankConfig& cfg = {});

}  // namespace viewmap::sys
