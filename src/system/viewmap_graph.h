// Viewmap construction (paper §5.2.1).
//
// A viewmap is the system's map of visibility around an incident for one
// unit-time: nodes are VPs, edges ("viewlinks") join VPs that were
// line-of-sight neighbors at some point in the minute. An edge requires
// BOTH (i) time-aligned location proximity within DSRC radius and (ii) a
// two-way Bloom membership pass — each VP's filter must recognize some VD
// of the other. Two-way validation is what stops attackers from forging
// edges to honest VPs they never actually met (§5.2.2 "Insights").
//
// Construction is grid-accelerated: member trajectories are binned into
// a per-build uniform grid with pitch = link radius, so the edge
// predicate only runs on pairs sharing a cell or in adjacent cells —
// O(n · local density) candidate pairs instead of the O(n²) all-pairs
// sweep — and the surviving edges are laid out as one flat CSR
// (system/csr_graph.h) that TrustRank and Algorithm 1 consume without
// copying. The candidate stream can be sharded across a small thread
// pool (ViewmapConfig::build_threads); the edge set is bit-identical
// for every thread count and to the retained O(n²) reference builder
// (property-tested in tests/viewmap_build_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"
#include "geo/geometry.h"
#include "index/db_snapshot.h"
#include "system/csr_graph.h"
#include "vp/view_profile.h"

namespace viewmap::sys {

struct ViewmapConfig {
  double link_radius_m = 400.0;  ///< DSRC radio radius (§5.1.2)
  double coverage_margin_m = 200.0;  ///< slack added around site ∪ trusted VP
  /// Threads sharding the candidate-pair stream of one build. 0 ⇒ pick
  /// from the hardware (small pool, capped at 4 — investigation-server
  /// workers already parallelize across requests); 1 ⇒ fully serial.
  /// Builds below the parallel cutoff run serial regardless; the edge
  /// set never depends on this knob.
  std::size_t build_threads = 0;
};

/// One constructed viewmap: member VPs with undirected CSR adjacency.
///
/// Lifetime: a Viewmap spans one unit-time, so when built over a
/// DbSnapshot it *pins* that minute's shard — its member profiles stay
/// valid for the viewmap's own lifetime, fully independent of concurrent
/// ingest, retention eviction, or the source database's destruction
/// (and without holding the snapshot's other shards in memory). A
/// Viewmap built from an explicit member vector (build_from_members
/// with no shard) borrows those profiles from the caller instead, which
/// must keep them alive.
class Viewmap {
 public:
  Viewmap(std::vector<const vp::ViewProfile*> members, std::vector<bool> trusted,
          CsrGraph graph, TimeSec unit_time, geo::Rect coverage,
          std::shared_ptr<const index::TimeShard> pinned = {});

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] const vp::ViewProfile& member(std::size_t i) const { return *members_.at(i); }
  [[nodiscard]] bool is_trusted(std::size_t i) const { return trusted_.at(i); }
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t i) const;
  [[nodiscard]] TimeSec unit_time() const noexcept { return unit_time_; }
  [[nodiscard]] const geo::Rect& coverage() const noexcept { return coverage_; }

  /// The viewlink graph itself, in flat CSR form. trust_rank() and
  /// algorithm1() consume this view directly — no per-call adjacency
  /// copy anywhere on the investigation path.
  [[nodiscard]] const CsrGraph& graph() const noexcept { return graph_; }

  [[nodiscard]] std::size_t edge_count() const noexcept { return graph_.edge_slots() / 2; }
  [[nodiscard]] std::vector<std::size_t> trusted_indices() const;

  /// Indices of members with any claimed location inside `site` — the set
  /// X of Algorithm 1.
  [[nodiscard]] std::vector<std::size_t> members_visiting(const geo::Rect& site) const;

  /// Count of members not connected to any trusted VP's component
  /// (the "<3% isolated VPs" statistic of Fig. 22f).
  [[nodiscard]] std::size_t isolated_from_trusted() const;

 private:
  std::vector<const vp::ViewProfile*> members_;
  std::vector<bool> trusted_;
  CsrGraph graph_;
  TimeSec unit_time_;
  geo::Rect coverage_;
  /// Keeps the member profiles alive (null when members are
  /// caller-owned — see the class comment).
  std::shared_ptr<const index::TimeShard> pinned_;
};

class ViewmapBuilder {
 public:
  explicit ViewmapBuilder(ViewmapConfig cfg = {}) : cfg_(cfg) {}

  /// §5.2.1 procedure: choose the trusted VP closest to `site` at
  /// `unit_time`, span the coverage area over site ∪ that VP's trajectory,
  /// pull in every VP claiming locations inside, and create viewlinks.
  /// The minute's shard is pinned inside the returned Viewmap, so the
  /// result remains valid however long the caller keeps it. Throws
  /// std::runtime_error if the snapshot holds no trusted VP for that
  /// minute (a viewmap without a trust seed cannot be verified).
  [[nodiscard]] Viewmap build(const index::DbSnapshot& snap, const geo::Rect& site,
                              TimeSec unit_time) const;

  /// Lower-level entry: build a viewmap over an explicit member set
  /// (evaluation harnesses inject synthetic/fake VPs this way). Pass the
  /// shard the members point into when there is one, so the viewmap pins
  /// it; with the default null shard the caller keeps the profiles
  /// alive. Grid-accelerated (see the file comment).
  [[nodiscard]] Viewmap build_from_members(
      std::vector<const vp::ViewProfile*> members, std::vector<bool> trusted,
      TimeSec unit_time, const geo::Rect& coverage,
      std::shared_ptr<const index::TimeShard> pinned = {}) const;

  /// The retained naive O(n²) builder: visits every member pair, applies
  /// the identical edge predicate, emits the identical CSR. It exists as
  /// the ground truth the grid-accelerated path is property-tested and
  /// benchmarked against (tests/viewmap_build_test.cpp, the
  /// `viewmap_build` scenario of bench_index) — never call it on the
  /// investigation path.
  [[nodiscard]] Viewmap build_from_members_reference(
      std::vector<const vp::ViewProfile*> members, std::vector<bool> trusted,
      TimeSec unit_time, const geo::Rect& coverage,
      std::shared_ptr<const index::TimeShard> pinned = {}) const;

  /// The §5.2.1 edge predicate, exposed for tests: two-way Bloom pass and
  /// time-aligned proximity.
  [[nodiscard]] bool viewlinked(const vp::ViewProfile& a, const vp::ViewProfile& b) const;

  /// What a `build_threads` setting resolves to on this host BEFORE the
  /// per-build clamps (serial cutoff, per-thread minimum work): 0 ⇒ the
  /// auto pick. The bench reports this as the pool's upper bound.
  [[nodiscard]] static std::size_t resolved_build_threads(std::size_t configured);

 private:
  ViewmapConfig cfg_;
};

}  // namespace viewmap::sys
