// Multi-threaded investigation front (the "public service" of §5).
//
// ViewMap is pitched as an automated service: investigation requests
// arrive continuously while the anonymous upload stream never pauses.
// PR 2's DbSnapshot made a single investigate() safe against concurrent
// ingest and retention eviction; this server is the missing front — a
// bounded MPMC request queue drained by a pool of worker threads, so N
// investigations proceed in parallel with each other AND with one live
// ingest_uploads() loop.
//
//   submit(site, unit_time)            ┐ bounded queue   ┌ worker 0 ─ pin
//   submit_period(site, begin, end)    ├───────────────▶ │ snapshot, build
//   … any number of submitter threads  ┘  (capacity K)   │ viewmap, verify,
//                                                        │ post solicitations
//                                                        └ worker N−1 …
//
// Each request resolves — through the std::future submit() returns — to
// exactly the reports ViewMapService::investigate_period() would have
// produced: one InvestigationReport per whole unit-time in [begin, end)
// that has a trust seed, each built over one immutable DbSnapshot and
// therefore valid indefinitely (the viewmap pins its shard).
//
// Snapshot discipline. A worker pins one DbSnapshot per request batch
// (batch_max = 1 ⇒ one per request, the default) and serves the whole
// batch from it. Between batches it consults the timeline write-version
// (VpTimeline::version(), the snapshot-acquisition hook): if no write
// completed since the cached snapshot's cut, the snapshot is still an
// exact image and is reused instead of re-pinned — O(live shards) of
// stripe-locked pointer copies saved on a quiet database. An idle worker
// drops its cached snapshot before blocking on the queue, so a parked
// server never prolongs the life of evicted shards or forces
// copy-on-write on the ingest path.
//
// Scheduling. The queue is three FIFOs, one per RequestPriority class;
// workers always drain the highest non-empty class first, so a kLive
// (SLA / live-incident) request overtakes any backlog of kBatch scans
// at the next dequeue. A request may also carry a start deadline
// (SubmitOptions::deadline); one dequeued too late fails fast with
// DeadlineExpired instead of wasting a worker — see stats().expired.
//
// Backpressure. The queue is bounded (queue_capacity). When it is full,
// submit() either blocks the submitter until a slot frees
// (OverflowPolicy::kBlock, the default) or rejects immediately
// (kReject). A rejected — or post-stop() — submission returns a future
// for which valid() == false; nothing is enqueued and stats().rejected
// counts it. pause()/resume() idle the workers without stopping intake
// (maintenance, tests); stop() rejects new submissions, drains every
// queued request, and joins the pool. The destructor stop()s.
//
// Concurrency contract. submit*/pause/resume/stop/queue_depth/stats are
// all thread-safe. Workers call ViewMapService::investigate(snap, …),
// whose shared state is the NoticeBoard — thread-safe as of this PR —
// and const ViewmapBuilder/Verifier configuration; they never touch the
// service's ingest-side members, so the one rule for the embedding
// application is unchanged from ViewMapService's own: drive
// ingest_uploads() from one thread at a time.
//
// Parallelism composes on two axes: this pool runs N *requests*
// concurrently, and each worker's viewmap build can additionally shard
// its candidate-pair stream across ViewmapConfig::build_threads
// (ServiceConfig::viewmap). Large single viewmaps benefit from
// build_threads; high request rates benefit from workers; both read
// only pinned snapshot state, so they compose with each other and with
// live ingest/eviction (TSan-covered in tests/server_test.cpp).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "geo/geometry.h"
#include "index/db_snapshot.h"
#include "system/service.h"

namespace viewmap::obs {
class Counter;  // obs/metrics.h
class Gauge;
class Histogram;
}  // namespace viewmap::obs

namespace viewmap::sys {

/// What submit() does when the request queue is at capacity.
enum class OverflowPolicy {
  kBlock,   ///< block the submitter until a slot frees (or stop())
  kReject,  ///< fail fast: return an invalid future, count it rejected
};

/// Scheduling class of one submitted request. Workers always drain the
/// highest non-empty class first (FIFO within a class), so a kLive
/// request submitted behind a backlog of kBatch scans is served next —
/// SLA traffic preempts historical work at dequeue granularity (an
/// in-flight batch is never interrupted).
enum class RequestPriority : std::uint8_t {
  kBatch = 0,   ///< historical/backfill scans: yield to everything else
  kNormal = 1,  ///< the default
  kLive = 2,    ///< live-incident / SLA traffic: served first
};

/// Per-request scheduling options for submit()/submit_period().
struct SubmitOptions {
  RequestPriority priority = RequestPriority::kNormal;
  /// Max time the request may wait before a worker *starts* serving it.
  /// Zero (the default) means no deadline. A request dequeued after its
  /// deadline fails fast: its future throws DeadlineExpired, and
  /// stats().expired counts it — distinct from queue-overflow rejection
  /// (invalid future) and from serve failure (stats().failed).
  std::chrono::milliseconds deadline{0};
};

/// What a deadline-expired request's future throws: the server looked at
/// the request only after its deadline passed and refused to burn a
/// worker on an answer nobody is waiting for anymore.
class DeadlineExpired : public std::runtime_error {
 public:
  DeadlineExpired() : std::runtime_error("investigation deadline expired in queue") {}
};

struct ServerConfig {
  /// Worker threads draining the queue. 0 ⇒ hardware_concurrency (min 1).
  std::size_t workers = 0;
  /// Bounded queue capacity; submissions beyond it hit `overflow`.
  std::size_t queue_capacity = 256;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Max requests one worker dequeues and serves from a single pinned
  /// DbSnapshot. 1 ⇒ snapshot-per-request; larger values amortize the
  /// O(live shards) snapshot cut across a burst at the cost of serving
  /// later requests in the batch from a marginally older cut.
  std::size_t batch_max = 1;
  /// Reuse a worker's previous snapshot when the timeline write-version
  /// is unchanged (see VpTimeline::version()) instead of re-pinning.
  bool reuse_unchanged_snapshot = true;
};

/// Monotonic counters since this server's construction. stats() reads
/// them as a thin snapshot view over the service's metrics registry
/// (current counter value minus its value when the server started, so a
/// stop_server()/start_server() cycle on one service still reports
/// per-server numbers while the registry keeps the cumulative truth).
/// Every field is a race-free sharded-counter sum — no torn multi-field
/// reads — though fields of one snapshot may be skewed by concurrent
/// progress; each is exact once the server quiesces.
struct ServerStats {
  std::size_t submitted = 0;   ///< requests accepted into the queue
  std::size_t completed = 0;   ///< requests resolved (value or exception)
  std::size_t rejected = 0;    ///< overflow (kReject) + post-stop submissions
  std::size_t reports = 0;     ///< InvestigationReports produced in total
  std::size_t batches = 0;     ///< dequeue rounds workers ran
  std::size_t snapshots = 0;   ///< DbSnapshots actually pinned (≤ batches)
  std::size_t failed = 0;      ///< completed with an exception (snapshot
                               ///< acquisition or serve failure; ⊂ completed)
  std::size_t expired = 0;     ///< completed via DeadlineExpired (⊂ completed)
  std::size_t peak_queue = 0;  ///< queue-depth high-water mark
};

class InvestigationServer {
 public:
  using Reports = std::vector<InvestigationReport>;

  /// Starts the worker pool immediately. The service must outlive the
  /// server (ViewMapService::start_server() owns one and guarantees it).
  explicit InvestigationServer(ViewMapService& service, const ServerConfig& cfg = {});
  ~InvestigationServer();
  InvestigationServer(const InvestigationServer&) = delete;
  InvestigationServer& operator=(const InvestigationServer&) = delete;

  /// One unit-time investigation. Equivalent to submit_period over
  /// [unit_start(t), unit_start(t) + one unit).
  [[nodiscard]] std::future<Reports> submit(const geo::Rect& site, TimeSec unit_time,
                                            const SubmitOptions& opts = {});
  /// §5.2.1 period investigation: one report per whole unit-time in
  /// [begin, end) that has a trust seed (seedless minutes are skipped,
  /// exactly as investigate_period() does). An invalid returned future
  /// (valid() == false) means the request was rejected, not queued; a
  /// valid future may still throw DeadlineExpired when opts.deadline
  /// passed before a worker got to it.
  [[nodiscard]] std::future<Reports> submit_period(const geo::Rect& site,
                                                   TimeSec begin, TimeSec end,
                                                   const SubmitOptions& opts = {});

  /// Idle the workers after their in-flight batch; the queue still
  /// accepts (and fills — backpressure becomes observable). Idempotent.
  void pause();
  void resume();
  /// Stops intake (further submits are rejected), drains every queued
  /// request, joins the pool. Idempotent; called by the destructor.
  void stop();

  [[nodiscard]] std::size_t queue_depth() const;
  /// Live worker threads (0 once stop() has claimed the pool).
  [[nodiscard]] std::size_t worker_count() const;
  [[nodiscard]] ServerStats stats() const;

 private:
  struct Request {
    geo::Rect site;
    TimeSec begin = 0;
    TimeSec end = 0;
    /// steady_clock deadline for *starting* service; max() ⇔ none.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    std::promise<Reports> promise;
  };

  void worker_loop();
  /// Serves one request from the given snapshot; fulfills its promise
  /// with reports or with the thrown exception.
  void serve(const index::DbSnapshot& snap, Request& req);
  /// Absolute registry counter values (not base-adjusted).
  [[nodiscard]] ServerStats counters_now() const;

  ViewMapService& service_;
  ServerConfig cfg_;

  /// Total queued requests across all priority classes. mutex_ held.
  [[nodiscard]] std::size_t queued() const noexcept {
    return queues_[0].size() + queues_[1].size() + queues_[2].size();
  }

  mutable std::mutex mutex_;  ///< guards queues_, paused_, stopping_, workers_
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  /// One FIFO per priority class, indexed by RequestPriority; dequeue
  /// scans kLive → kNormal → kBatch. The capacity bound applies to the
  /// sum — a full queue rejects regardless of class (priority decides
  /// service order, not admission).
  std::array<std::deque<Request>, 3> queues_;
  bool paused_ = false;
  bool stopping_ = false;

  /// Registry handles (the service always has a registry, so never
  /// null). Counters are cumulative across server generations; base_
  /// holds their values at construction — see ServerStats.
  obs::Counter* submitted_c_ = nullptr;
  obs::Counter* completed_c_ = nullptr;
  obs::Counter* rejected_c_ = nullptr;
  obs::Counter* reports_c_ = nullptr;
  obs::Counter* batches_c_ = nullptr;
  obs::Counter* snapshots_c_ = nullptr;
  obs::Counter* failed_c_ = nullptr;   ///< requests completed exceptionally
  obs::Counter* expired_c_ = nullptr;  ///< requests failed via DeadlineExpired
  obs::Counter* busy_us_c_ = nullptr;  ///< worker µs spent serving batches
  obs::Counter* idle_us_c_ = nullptr;  ///< worker µs blocked on the queue
  obs::Gauge* queue_depth_g_ = nullptr;
  obs::Gauge* queue_peak_g_ = nullptr;
  obs::Histogram* request_us_ = nullptr;
  ServerStats base_;
  std::atomic<std::size_t> peak_queue_{0};  ///< this server's own high-water

  std::vector<std::thread> workers_;
};

}  // namespace viewmap::sys
