#include "system/solicitation.h"

namespace viewmap::sys {

void NoticeBoard::post(const Id16& vp_id, RequestKind kind) {
  std::lock_guard lock(mutex_);
  auto& e = entries_[vp_id];
  (kind == RequestKind::kVideo ? e.video : e.reward) = true;
}

void NoticeBoard::withdraw(const Id16& vp_id, RequestKind kind) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(vp_id);
  if (it == entries_.end()) return;
  (kind == RequestKind::kVideo ? it->second.video : it->second.reward) = false;
  if (!it->second.video && !it->second.reward) entries_.erase(it);
}

bool NoticeBoard::is_posted(const Id16& vp_id, RequestKind kind) const {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(vp_id);
  if (it == entries_.end()) return false;
  return kind == RequestKind::kVideo ? it->second.video : it->second.reward;
}

std::vector<Id16> NoticeBoard::posted(RequestKind kind) const {
  std::lock_guard lock(mutex_);
  std::vector<Id16> out;
  for (const auto& [id, e] : entries_)
    if (kind == RequestKind::kVideo ? e.video : e.reward) out.push_back(id);
  return out;
}

bool validate_solicited_video(const vp::ViewProfile& profile,
                              const vp::RecordedVideo& video) {
  const auto digests = profile.digests();
  std::vector<crypto::ChainStepMeta> metas;
  std::vector<Hash16> expected;
  std::vector<std::uint64_t> offsets;
  metas.reserve(digests.size());
  expected.reserve(digests.size());
  offsets.reserve(digests.size() + 1);
  offsets.push_back(0);
  for (const auto& vd : digests) {
    metas.push_back(vd.chain_meta());
    expected.push_back(vd.hash);
    offsets.push_back(vd.file_size);  // F_i is cumulative ⇒ chunk i ends at F_i
  }
  return crypto::verify_chain(profile.vp_id(), metas, expected, video.bytes, offsets);
}

}  // namespace viewmap::sys
