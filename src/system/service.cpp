#include "system/service.h"

#include <algorithm>
#include <cstdio>

#include "common/reentrancy.h"
#include "obs/metrics.h"
#include "store/segment_store.h"
#include "system/investigation_server.h"

namespace viewmap::sys {

namespace {

/// Resolves the service's registry (allocating one into `owned` when the
/// caller supplied none) and propagates it into the component configs
/// the service constructs its members from — the single place the
/// registry fans out to every subsystem.
ServiceConfig wire_config(ServiceConfig cfg,
                          std::unique_ptr<obs::MetricsRegistry>& owned) {
  if (cfg.metrics == nullptr) {
    owned = std::make_unique<obs::MetricsRegistry>();
    cfg.metrics = owned.get();
  }
  cfg.index.metrics = cfg.metrics;
  cfg.ingest.metrics = cfg.metrics;
  cfg.result_cache.metrics = cfg.metrics;
  return cfg;
}

/// Field-wise `current − base`, the registry-to-snapshot-view offset.
index::IngestStats minus(const index::IngestStats& cur,
                         const index::IngestStats& base) noexcept {
  index::IngestStats out;
  out.accepted = cur.accepted - base.accepted;
  out.rejected_malformed = cur.rejected_malformed - base.rejected_malformed;
  out.rejected_untimely = cur.rejected_untimely - base.rejected_untimely;
  out.rejected_duplicate = cur.rejected_duplicate - base.rejected_duplicate;
  out.evicted = cur.evicted - base.evicted;
  out.batches = cur.batches - base.batches;
  return out;
}

}  // namespace

ViewMapService::ViewMapService(const ServiceConfig& cfg)
    : cfg_(wire_config(cfg, owned_metrics_)),
      metrics_(cfg_.metrics),
      channel_(cfg_.channel_seed, cfg_.mix_pool),
      db_(vp::VpUploadPolicy{}, cfg_.index),
      builder_(cfg_.viewmap),
      verifier_(cfg_.trustrank),
      bank_(cfg_.rsa_bits),
      tracer_(cfg_.slow_trace_keep),
      cache_(cfg_.result_cache),
      ingest_metrics_(index::IngestMetrics::wire(*metrics_)),
      ingest_base_(ingest_metrics_.totals()),
      investigate_us_(&metrics_->histogram("viewmap_investigate_us")),
      cache_hit_us_(&metrics_->histogram("viewmap_cache_hit_us")) {}

index::IngestStats ViewMapService::ingest_totals() const noexcept {
  return minus(ingest_metrics_.totals(), ingest_base_);
}

void ViewMapService::dump_metrics(std::ostream& os) const { metrics_->render(os); }

// Out of line: the header only forward-declares InvestigationServer.
ViewMapService::~ViewMapService() { stop_server(); }

InvestigationServer& ViewMapService::start_server() {
  return start_server(ServerConfig{});
}

InvestigationServer& ViewMapService::start_server(const ServerConfig& cfg) {
  if (server_ == nullptr)
    server_ = std::make_unique<InvestigationServer>(*this, cfg);
  return *server_;
}

void ViewMapService::stop_server() {
  if (server_ == nullptr) return;
  server_->stop();
  server_.reset();
}

std::size_t ViewMapService::ingest_uploads() {
#ifndef NDEBUG
  // Catch two control threads draining at once (last_ingest_ would tear).
  ReentrancyGuard guard(ingest_entered_, "ViewMapService::ingest_uploads()");
#endif
  // The engine is stateless apart from its totals, so a per-call instance
  // keeps the service free of self-referential members; the service keeps
  // the running totals itself.
  index::IngestEngine engine(db_.timeline(), db_.policy(), cfg_.ingest);
  last_ingest_ = engine.drain(channel_);
  // No totals accumulator here any more: ingest_totals() reads the
  // registry counters the engine just incremented.
  return last_ingest_.accepted;
}

bool ViewMapService::register_trusted(vp::ViewProfile profile) {
  return db_.upload_trusted(std::move(profile));
}

store::CheckpointStats ViewMapService::checkpoint(store::SegmentStore& store) const {
  // First contact wires the store into this service's registry (no-op if
  // the store already publishes elsewhere); all checkpoint/fsync metrics
  // are recorded inside SegmentStore itself.
  store.adopt_metrics(metrics_);
  // One pinned snapshot for the whole checkpoint: immutable while ingest,
  // eviction, and investigations keep mutating the live database.
  return store.checkpoint(db_.snapshot());
}

store::RecoveryStats ViewMapService::restore_from(const store::SegmentStore& store) {
  store.adopt_metrics(metrics_);
  store::RecoveryStats stats;
  // cfg_.index carries this service's registry, so the recovered
  // timeline publishes its shard gauge here too (the old timeline
  // withdraws its own contribution as it is destroyed).
  db_ = store.recover(db_.policy(), cfg_.index, &stats);
  return stats;
}

store::RecoveryStats ViewMapService::restore_from(
    const store::SegmentStore& store, std::uint64_t sequence) {
  store.adopt_metrics(metrics_);
  store::RecoveryStats stats;
  // recover(sequence) throws on a missing/damaged manifest *before* the
  // assignment, so a failed point-in-time restore leaves db_ intact.
  db_ = store.recover(sequence, db_.policy(), cfg_.index, &stats);
  return stats;
}

InvestigationReport ViewMapService::investigate(const geo::Rect& site,
                                                TimeSec unit_time) {
  // One snapshot per investigation: everything below reads a pinned,
  // immutable view, so ingest and eviction proceed concurrently.
  return investigate(db_.snapshot(), site, unit_time);
}

InvestigationReport ViewMapService::investigate(const DbSnapshot& snap,
                                                const geo::Rect& site,
                                                TimeSec unit_time) {
  char label[96];
  std::snprintf(label, sizeof label, "investigate site=(%.0f,%.0f) unit=%lld",
                site.min.x, site.min.y, static_cast<long long>(unit_time));
  // The root of this request's trace: SpanScopes inside the builder,
  // TrustRank, and the verifier attach themselves to it via the
  // thread-local active trace, and a snapshot_pin span stashed by the
  // investigation server (when it is the caller) becomes its first span.
  obs::TraceScope scope(&tracer_, label);

  // Cache key: (site, unit-time, shard change identity). The builder
  // reads exactly snap.shard(unit_time)'s contents, and shard_cache_key
  // equality proves those contents are unchanged since a previous build
  // (content digest when one is already cached, else the shard's
  // generation stamp — see TimeShard::cache_key; O(1) either way, never
  // hashing on this path), so that build's report can be returned
  // bit-identically (trace excluded — it records the serving path). A
  // missing shard keys as the zero hash: such builds share one key per
  // (site, unit_time), correctly, because they all see the same empty
  // member set.
  ResultCache::Key key{};
  const bool cacheable = cache_.enabled();
  if (cacheable) {
    key.site = site;
    key.unit_time = unit_time;
    key.digest = snap.shard_cache_key(unit_time).value_or(Hash32{});
    if (const std::shared_ptr<const CachedInvestigation> hit = cache_.find(key)) {
      std::optional<InvestigationReport> report;
      {
        obs::SpanScope span("result_cache_hit");
        // Re-post the solicitations: post() is idempotent, and a
        // cache-off investigate() over the same inputs would re-post
        // too — including after submit_video() withdrew a notice.
        for (const Id16& id : hit->solicited) board_.post(id, RequestKind::kVideo);
        report.emplace(
            InvestigationReport{hit->viewmap, hit->verification, hit->solicited});
      }
      report->trace = scope.finish();
      investigate_us_->record(report->trace.total_us);
      cache_hit_us_->record(report->trace.total_us);
      return std::move(*report);
    }
  }

  Viewmap map = builder_.build(snap, site, unit_time);
  VerificationResult verdict = verifier_.verify(map, site);

  std::vector<Id16> solicited;
  {
    obs::SpanScope span("solicit");
    solicited.reserve(verdict.legitimate.size());
    for (std::size_t i : verdict.legitimate) {
      if (map.is_trusted(i)) continue;  // authorities' own videos need no request
      const Id16 id = map.member(i).vp_id();
      board_.post(id, RequestKind::kVideo);
      solicited.push_back(id);
    }
  }

  if (cacheable) {
    // Copy, don't move: the report below still owns the originals. The
    // Viewmap copy shares the pinned shard, not the profiles' bytes.
    cache_.insert(key, std::make_shared<CachedInvestigation>(
                           CachedInvestigation{map, verdict, solicited}));
  }

  InvestigationReport report{std::move(map), std::move(verdict), std::move(solicited)};
  report.trace = scope.finish();
  investigate_us_->record(report.trace.total_us);
  return report;
}

std::vector<InvestigationReport> ViewMapService::investigate_period(
    const geo::Rect& site, TimeSec begin, TimeSec end) {
  // One snapshot per period: every minute's viewmap is built over the
  // same consistent database state.
  return investigate_period(db_.snapshot(), site, begin, end);
}

std::vector<InvestigationReport> ViewMapService::investigate_period(
    const DbSnapshot& snap, const geo::Rect& site, TimeSec begin, TimeSec end) {
  std::vector<InvestigationReport> reports;
  for (TimeSec t = unit_start(begin); t < end; t += kUnitTimeSec) {
    if (snap.trusted_at(t).empty()) continue;  // no trust seed, no verification
    reports.push_back(investigate(snap, site, t));
  }
  return reports;
}

std::vector<Id16> ViewMapService::pending_video_requests(
    std::span<const Id16> my_vp_ids) const {
  std::vector<Id16> out;
  for (const Id16& id : my_vp_ids)
    if (board_.is_posted(id, RequestKind::kVideo)) out.push_back(id);
  return out;
}

bool ViewMapService::submit_video(const Id16& vp_id, const vp::RecordedVideo& video) {
  if (!board_.is_posted(vp_id, RequestKind::kVideo)) return false;
  // An owning reference: the validation below is immune to a concurrent
  // retention pass evicting the profile's shard.
  const std::shared_ptr<const vp::ViewProfile> profile = db_.find(vp_id);
  if (profile == nullptr) return false;
  if (!validate_solicited_video(*profile, video)) return false;
  board_.withdraw(vp_id, RequestKind::kVideo);
  review_.push_back(vp_id);
  return true;
}

void ViewMapService::conclude_review(const Id16& vp_id, bool approved, int units) {
  review_.erase(std::remove(review_.begin(), review_.end(), vp_id), review_.end());
  if (approved && units > 0) {
    board_.post(vp_id, RequestKind::kReward);
    granted_[vp_id] = units;
  }
}

std::optional<int> ViewMapService::begin_reward_claim(const Id16& vp_id,
                                                      const vp::VpSecret& secret) {
  if (!board_.is_posted(vp_id, RequestKind::kReward)) return std::nullopt;
  if (secret.vp_id() != vp_id) return std::nullopt;  // ownership proof failed
  auto it = granted_.find(vp_id);
  if (it == granted_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::vector<crypto::BigBytes>> ViewMapService::sign_reward_batch(
    const Id16& vp_id, std::span<const crypto::BigBytes> blinded) {
  auto it = granted_.find(vp_id);
  if (it == granted_.end()) return std::nullopt;
  if (blinded.size() != static_cast<std::size_t>(it->second)) return std::nullopt;
  auto signatures = bank_.sign_blinded(blinded);
  // The claim is consumed: one reward per reviewed video.
  granted_.erase(it);
  board_.withdraw(vp_id, RequestKind::kReward);
  return signatures;
}

}  // namespace viewmap::sys
