#include "system/service.h"

#include <algorithm>

#include "store/segment_store.h"
#include "system/investigation_server.h"

namespace viewmap::sys {

ViewMapService::ViewMapService(const ServiceConfig& cfg)
    : cfg_(cfg),
      channel_(cfg.channel_seed, cfg.mix_pool),
      db_(vp::VpUploadPolicy{}, cfg.index),
      builder_(cfg.viewmap),
      verifier_(cfg.trustrank),
      bank_(cfg.rsa_bits) {}

// Out of line: the header only forward-declares InvestigationServer.
ViewMapService::~ViewMapService() { stop_server(); }

InvestigationServer& ViewMapService::start_server() {
  return start_server(ServerConfig{});
}

InvestigationServer& ViewMapService::start_server(const ServerConfig& cfg) {
  if (server_ == nullptr)
    server_ = std::make_unique<InvestigationServer>(*this, cfg);
  return *server_;
}

void ViewMapService::stop_server() {
  if (server_ == nullptr) return;
  server_->stop();
  server_.reset();
}

std::size_t ViewMapService::ingest_uploads() {
  // The engine is stateless apart from its totals, so a per-call instance
  // keeps the service free of self-referential members; the service keeps
  // the running totals itself.
  index::IngestEngine engine(db_.timeline(), db_.policy(), cfg_.ingest);
  last_ingest_ = engine.drain(channel_);
  ingest_totals_ += last_ingest_;
  return last_ingest_.accepted;
}

bool ViewMapService::register_trusted(vp::ViewProfile profile) {
  return db_.upload_trusted(std::move(profile));
}

store::CheckpointStats ViewMapService::checkpoint(store::SegmentStore& store) const {
  // One pinned snapshot for the whole checkpoint: immutable while ingest,
  // eviction, and investigations keep mutating the live database.
  return store.checkpoint(db_.snapshot());
}

store::RecoveryStats ViewMapService::restore_from(const store::SegmentStore& store) {
  store::RecoveryStats stats;
  db_ = store.recover(db_.policy(), cfg_.index, &stats);
  return stats;
}

InvestigationReport ViewMapService::investigate(const geo::Rect& site,
                                                TimeSec unit_time) {
  // One snapshot per investigation: everything below reads a pinned,
  // immutable view, so ingest and eviction proceed concurrently.
  return investigate(db_.snapshot(), site, unit_time);
}

InvestigationReport ViewMapService::investigate(const DbSnapshot& snap,
                                                const geo::Rect& site,
                                                TimeSec unit_time) {
  Viewmap map = builder_.build(snap, site, unit_time);
  VerificationResult verdict = verifier_.verify(map, site);

  std::vector<Id16> solicited;
  solicited.reserve(verdict.legitimate.size());
  for (std::size_t i : verdict.legitimate) {
    if (map.is_trusted(i)) continue;  // authorities' own videos need no request
    const Id16 id = map.member(i).vp_id();
    board_.post(id, RequestKind::kVideo);
    solicited.push_back(id);
  }
  return InvestigationReport{std::move(map), std::move(verdict), std::move(solicited)};
}

std::vector<InvestigationReport> ViewMapService::investigate_period(
    const geo::Rect& site, TimeSec begin, TimeSec end) {
  // One snapshot per period: every minute's viewmap is built over the
  // same consistent database state.
  return investigate_period(db_.snapshot(), site, begin, end);
}

std::vector<InvestigationReport> ViewMapService::investigate_period(
    const DbSnapshot& snap, const geo::Rect& site, TimeSec begin, TimeSec end) {
  std::vector<InvestigationReport> reports;
  for (TimeSec t = unit_start(begin); t < end; t += kUnitTimeSec) {
    if (snap.trusted_at(t).empty()) continue;  // no trust seed, no verification
    reports.push_back(investigate(snap, site, t));
  }
  return reports;
}

std::vector<Id16> ViewMapService::pending_video_requests(
    std::span<const Id16> my_vp_ids) const {
  std::vector<Id16> out;
  for (const Id16& id : my_vp_ids)
    if (board_.is_posted(id, RequestKind::kVideo)) out.push_back(id);
  return out;
}

bool ViewMapService::submit_video(const Id16& vp_id, const vp::RecordedVideo& video) {
  if (!board_.is_posted(vp_id, RequestKind::kVideo)) return false;
  // An owning reference: the validation below is immune to a concurrent
  // retention pass evicting the profile's shard.
  const std::shared_ptr<const vp::ViewProfile> profile = db_.find(vp_id);
  if (profile == nullptr) return false;
  if (!validate_solicited_video(*profile, video)) return false;
  board_.withdraw(vp_id, RequestKind::kVideo);
  review_.push_back(vp_id);
  return true;
}

void ViewMapService::conclude_review(const Id16& vp_id, bool approved, int units) {
  review_.erase(std::remove(review_.begin(), review_.end(), vp_id), review_.end());
  if (approved && units > 0) {
    board_.post(vp_id, RequestKind::kReward);
    granted_[vp_id] = units;
  }
}

std::optional<int> ViewMapService::begin_reward_claim(const Id16& vp_id,
                                                      const vp::VpSecret& secret) {
  if (!board_.is_posted(vp_id, RequestKind::kReward)) return std::nullopt;
  if (secret.vp_id() != vp_id) return std::nullopt;  // ownership proof failed
  auto it = granted_.find(vp_id);
  if (it == granted_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::vector<crypto::BigBytes>> ViewMapService::sign_reward_batch(
    const Id16& vp_id, std::span<const crypto::BigBytes> blinded) {
  auto it = granted_.find(vp_id);
  if (it == granted_.end()) return std::nullopt;
  if (blinded.size() != static_cast<std::size_t>(it->second)) return std::nullopt;
  auto signatures = bank_.sign_blinded(blinded);
  // The claim is consumed: one reward per reviewed video.
  granted_.erase(it);
  board_.withdraw(vp_id, RequestKind::kReward);
  return signatures;
}

}  // namespace viewmap::sys
