#include "system/csr_graph.h"

#include <stdexcept>
#include <utility>

namespace viewmap::sys {

CsrGraph::CsrGraph(std::vector<std::size_t> offsets, std::vector<std::uint32_t> edges)
    : offsets_(std::move(offsets)), edges_(std::move(edges)) {
  if (offsets_.empty()) {
    if (!edges_.empty())
      throw std::invalid_argument("CsrGraph: edges without offsets");
    return;
  }
  if (offsets_.front() != 0 || offsets_.back() != edges_.size())
    throw std::invalid_argument("CsrGraph: offsets do not frame the edge array");
  const std::size_t n = offsets_.size() - 1;
  for (std::size_t i = 0; i < n; ++i)
    if (offsets_[i] > offsets_[i + 1])
      throw std::invalid_argument("CsrGraph: offsets must be non-decreasing");
  for (const std::uint32_t e : edges_)
    if (e >= n) throw std::invalid_argument("CsrGraph: edge target out of range");
}

CsrGraph CsrGraph::from_adjacency(
    std::span<const std::vector<std::uint32_t>> adjacency) {
  const std::size_t n = adjacency.size();
  std::vector<std::size_t> offsets(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) offsets[i + 1] = offsets[i] + adjacency[i].size();
  std::vector<std::uint32_t> edges;
  edges.reserve(offsets.back());
  for (const auto& nbrs : adjacency) edges.insert(edges.end(), nbrs.begin(), nbrs.end());
  return CsrGraph(std::move(offsets), std::move(edges));
}

}  // namespace viewmap::sys
