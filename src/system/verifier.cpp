#include "system/verifier.h"

#include <algorithm>
#include <queue>

#include "obs/trace.h"

namespace viewmap::sys {

Algorithm1Verdict algorithm1(const CsrGraph& graph, std::span<const double> scores,
                             std::span<const std::size_t> site_members) {
  Algorithm1Verdict verdict;
  if (site_members.empty()) return verdict;

  // Highest-scored VP u in X.
  std::size_t u = site_members.front();
  for (std::size_t i : site_members)
    if (scores[i] > scores[u]) u = i;
  verdict.top_scored = u;

  // W: VPs in X reachable from u strictly via VPs in X.
  std::vector<bool> in_site(graph.size(), false);
  for (std::size_t i : site_members) in_site[i] = true;

  std::vector<bool> legit(graph.size(), false);
  legit[u] = true;
  std::queue<std::size_t> frontier;
  frontier.push(u);
  while (!frontier.empty()) {
    const std::size_t v = frontier.front();
    frontier.pop();
    for (std::uint32_t w : graph.neighbors(v)) {
      if (in_site[w] && !legit[w]) {
        legit[w] = true;
        frontier.push(w);
      }
    }
  }
  for (std::size_t i : site_members)
    if (legit[i]) verdict.legitimate.push_back(i);
  return verdict;
}

Algorithm1Verdict algorithm1(std::span<const std::vector<std::uint32_t>> adjacency,
                             std::span<const double> scores,
                             std::span<const std::size_t> site_members) {
  return algorithm1(CsrGraph::from_adjacency(adjacency), scores, site_members);
}

bool VerificationResult::is_legitimate(std::size_t member_index) const {
  return std::find(legitimate.begin(), legitimate.end(), member_index) !=
         legitimate.end();
}

VerificationResult Verifier::verify(const Viewmap& map, const geo::Rect& site) const {
  VerificationResult result;
  result.site_members = map.members_visiting(site);
  if (result.site_members.empty()) return result;

  // Both stages read the viewmap's CSR in place — the old per-verify
  // vector-of-vectors rebuild is gone.
  result.ranks = trust_rank(map, cfg_);
  const Algorithm1Verdict verdict = [&] {
    obs::SpanScope obs_span("algorithm1");
    return algorithm1(map.graph(), result.ranks.scores, result.site_members);
  }();

  std::vector<bool> legit(map.size(), false);
  for (std::size_t i : verdict.legitimate) legit[i] = true;
  for (std::size_t i : result.site_members)
    (legit[i] ? result.legitimate : result.rejected).push_back(i);
  return result;
}

}  // namespace viewmap::sys
