#include "system/investigation_server.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace viewmap::sys {

InvestigationServer::InvestigationServer(ViewMapService& service,
                                         const ServerConfig& cfg)
    : service_(service), cfg_(cfg) {
  if (cfg_.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    cfg_.workers = hw == 0 ? 1 : hw;
  }
  cfg_.queue_capacity = std::max<std::size_t>(cfg_.queue_capacity, 1);
  cfg_.batch_max = std::max<std::size_t>(cfg_.batch_max, 1);
  workers_.reserve(cfg_.workers);
  try {
    for (std::size_t i = 0; i < cfg_.workers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  } catch (...) {
    stop();  // join the workers that did spawn before rethrowing
    throw;
  }
}

InvestigationServer::~InvestigationServer() { stop(); }

std::future<InvestigationServer::Reports> InvestigationServer::submit(
    const geo::Rect& site, TimeSec unit_time) {
  const TimeSec begin = unit_start(unit_time);
  return submit_period(site, begin, begin + kUnitTimeSec);
}

std::future<InvestigationServer::Reports> InvestigationServer::submit_period(
    const geo::Rect& site, TimeSec begin, TimeSec end) {
  Request req{site, begin, end, {}};
  std::future<Reports> fut = req.promise.get_future();
  {
    std::unique_lock lock(mutex_);
    if (cfg_.overflow == OverflowPolicy::kBlock)
      not_full_.wait(lock, [this] {
        return queue_.size() < cfg_.queue_capacity || stopping_;
      });
    if (stopping_ || queue_.size() >= cfg_.queue_capacity) {
      ++stats_.rejected;
      return {};  // invalid future ⇔ rejected, nothing queued
    }
    queue_.push_back(std::move(req));
    ++stats_.submitted;
    stats_.peak_queue = std::max(stats_.peak_queue, queue_.size());
  }
  not_empty_.notify_one();
  return fut;
}

void InvestigationServer::pause() {
  std::lock_guard lock(mutex_);
  if (!stopping_) paused_ = true;  // stop() has priority: the queue must drain
}

void InvestigationServer::resume() {
  {
    std::lock_guard lock(mutex_);
    paused_ = false;
  }
  not_empty_.notify_all();
}

void InvestigationServer::stop() {
  // The pool is claimed under the lock, joined outside it: two threads
  // calling stop() on a live server each get a disjoint set of threads
  // to join — never the same std::thread. (Destroying the server itself
  // concurrently is a lifecycle question; see ViewMapService's
  // start_server/stop_server contract.)
  std::vector<std::thread> claimed;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    paused_ = false;  // stop overrides pause: the queue must drain
    claimed.swap(workers_);
  }
  not_empty_.notify_all();
  not_full_.notify_all();  // blocked submitters wake up and get rejected
  for (auto& worker : claimed)
    if (worker.joinable()) worker.join();
}

std::size_t InvestigationServer::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::size_t InvestigationServer::worker_count() const {
  std::lock_guard lock(mutex_);
  return workers_.size();
}

ServerStats InvestigationServer::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void InvestigationServer::worker_loop() {
  // Worker-local snapshot cache (see the header's snapshot discipline).
  index::DbSnapshot cached;
  bool has_cached = false;
  std::vector<Request> batch;

  for (;;) {
    batch.clear();
    {
      std::unique_lock lock(mutex_);
      if ((queue_.empty() || paused_) && has_cached) {
        // About to idle: drop the cached snapshot first so a parked
        // worker neither keeps evicted shards alive nor forces
        // copy-on-write on the ingest path. Released outside the lock —
        // shard destruction can be the expensive part.
        lock.unlock();
        cached = index::DbSnapshot{};
        has_cached = false;
        lock.lock();
      }
      // stopping_ overrides paused_ so a pause() racing stop() can never
      // strand queued requests (and stop() in workers' join).
      not_empty_.wait(lock, [this] {
        return (!queue_.empty() && (!paused_ || stopping_)) ||
               (stopping_ && queue_.empty());
      });
      if (queue_.empty()) return;  // stopping, fully drained
      const std::size_t take = std::min(cfg_.batch_max, queue_.size());
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++stats_.batches;
    }
    not_full_.notify_all();

    // One snapshot serves the batch; reuse the cached one when the
    // timeline write-version proves nothing changed since its cut.
    try {
      const auto& timeline = service_.database().timeline();
      if (!has_cached || !cfg_.reuse_unchanged_snapshot ||
          timeline.version() != cached.version()) {
        cached = service_.database().snapshot();
        has_cached = true;
        std::lock_guard lock(mutex_);
        ++stats_.snapshots;
      }
    } catch (...) {
      // Snapshot acquisition failed (allocation): fail the whole batch.
      const std::exception_ptr err = std::current_exception();
      {
        std::lock_guard lock(mutex_);
        stats_.completed += batch.size();
      }
      for (auto& req : batch) req.promise.set_exception(err);
      continue;
    }
    for (auto& req : batch) serve(cached, req);
  }
}

void InvestigationServer::serve(const index::DbSnapshot& snap, Request& req) {
  // Stats commit BEFORE the promise resolves: a caller returning from
  // future::get() always observes this request in stats().completed.
  try {
    Reports reports = service_.investigate_period(snap, req.site, req.begin, req.end);
    {
      std::lock_guard lock(mutex_);
      ++stats_.completed;
      stats_.reports += reports.size();
    }
    req.promise.set_value(std::move(reports));
  } catch (...) {
    {
      std::lock_guard lock(mutex_);
      ++stats_.completed;
    }
    req.promise.set_exception(std::current_exception());
  }
}

}  // namespace viewmap::sys
