#include "system/investigation_server.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace viewmap::sys {

namespace {

std::uint64_t us_since(std::chrono::steady_clock::time_point start) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

InvestigationServer::InvestigationServer(ViewMapService& service,
                                         const ServerConfig& cfg)
    : service_(service), cfg_(cfg) {
  if (cfg_.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    cfg_.workers = hw == 0 ? 1 : hw;
  }
  cfg_.queue_capacity = std::max<std::size_t>(cfg_.queue_capacity, 1);
  cfg_.batch_max = std::max<std::size_t>(cfg_.batch_max, 1);

  // Resolve every registry handle before any worker exists, then record
  // the counters' current values as this server's zero point.
  obs::MetricsRegistry& reg = service_.metrics();
  submitted_c_ = &reg.counter("viewmap_server_submitted_total");
  completed_c_ = &reg.counter("viewmap_server_completed_total");
  rejected_c_ = &reg.counter("viewmap_server_rejected_total");
  reports_c_ = &reg.counter("viewmap_server_reports_total");
  batches_c_ = &reg.counter("viewmap_server_batches_total");
  snapshots_c_ = &reg.counter("viewmap_server_snapshots_total");
  failed_c_ = &reg.counter("viewmap_server_failed_total");
  expired_c_ = &reg.counter("viewmap_server_deadline_expired_total");
  busy_us_c_ = &reg.counter("viewmap_server_busy_us_total");
  idle_us_c_ = &reg.counter("viewmap_server_idle_us_total");
  queue_depth_g_ = &reg.gauge("viewmap_server_queue_depth");
  queue_peak_g_ = &reg.gauge("viewmap_server_queue_peak");
  request_us_ = &reg.histogram("viewmap_server_request_us");
  base_ = counters_now();
  queue_depth_g_->set(0);

  workers_.reserve(cfg_.workers);
  try {
    for (std::size_t i = 0; i < cfg_.workers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  } catch (...) {
    stop();  // join the workers that did spawn before rethrowing
    throw;
  }
}

InvestigationServer::~InvestigationServer() { stop(); }

std::future<InvestigationServer::Reports> InvestigationServer::submit(
    const geo::Rect& site, TimeSec unit_time, const SubmitOptions& opts) {
  const TimeSec begin = unit_start(unit_time);
  return submit_period(site, begin, begin + kUnitTimeSec, opts);
}

std::future<InvestigationServer::Reports> InvestigationServer::submit_period(
    const geo::Rect& site, TimeSec begin, TimeSec end, const SubmitOptions& opts) {
  Request req{site, begin, end,
              opts.deadline.count() > 0
                  ? std::chrono::steady_clock::now() + opts.deadline
                  : std::chrono::steady_clock::time_point::max(),
              {}};
  std::future<Reports> fut = req.promise.get_future();
  auto& queue = queues_[static_cast<std::size_t>(opts.priority)];
  {
    std::unique_lock lock(mutex_);
    if (cfg_.overflow == OverflowPolicy::kBlock)
      not_full_.wait(lock, [this] {
        return queued() < cfg_.queue_capacity || stopping_;
      });
    if (stopping_ || queued() >= cfg_.queue_capacity) {
      rejected_c_->add();
      return {};  // invalid future ⇔ rejected, nothing queued
    }
    queue.push_back(std::move(req));
    submitted_c_->add();
    const std::size_t depth = queued();
    queue_depth_g_->set(static_cast<std::int64_t>(depth));
    queue_peak_g_->update_max(static_cast<std::int64_t>(depth));
    // Only mutated under mutex_, so a plain max-store cannot lose.
    if (depth > peak_queue_.load(std::memory_order_relaxed))
      peak_queue_.store(depth, std::memory_order_relaxed);
  }
  not_empty_.notify_one();
  return fut;
}

void InvestigationServer::pause() {
  std::lock_guard lock(mutex_);
  if (!stopping_) paused_ = true;  // stop() has priority: the queue must drain
}

void InvestigationServer::resume() {
  {
    std::lock_guard lock(mutex_);
    paused_ = false;
  }
  not_empty_.notify_all();
}

void InvestigationServer::stop() {
  // The pool is claimed under the lock, joined outside it: two threads
  // calling stop() on a live server each get a disjoint set of threads
  // to join — never the same std::thread. (Destroying the server itself
  // concurrently is a lifecycle question; see ViewMapService's
  // start_server/stop_server contract.)
  std::vector<std::thread> claimed;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    paused_ = false;  // stop overrides pause: the queue must drain
    claimed.swap(workers_);
  }
  not_empty_.notify_all();
  not_full_.notify_all();  // blocked submitters wake up and get rejected
  for (auto& worker : claimed)
    if (worker.joinable()) worker.join();
}

std::size_t InvestigationServer::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queued();
}

std::size_t InvestigationServer::worker_count() const {
  std::lock_guard lock(mutex_);
  return workers_.size();
}

ServerStats InvestigationServer::counters_now() const {
  ServerStats s;
  s.submitted = submitted_c_->value();
  s.completed = completed_c_->value();
  s.rejected = rejected_c_->value();
  s.reports = reports_c_->value();
  s.batches = batches_c_->value();
  s.snapshots = snapshots_c_->value();
  s.failed = failed_c_->value();
  s.expired = expired_c_->value();
  return s;
}

ServerStats InvestigationServer::stats() const {
  const ServerStats now = counters_now();
  ServerStats s;
  s.submitted = now.submitted - base_.submitted;
  s.completed = now.completed - base_.completed;
  s.rejected = now.rejected - base_.rejected;
  s.reports = now.reports - base_.reports;
  s.batches = now.batches - base_.batches;
  s.snapshots = now.snapshots - base_.snapshots;
  s.failed = now.failed - base_.failed;
  s.expired = now.expired - base_.expired;
  s.peak_queue = peak_queue_.load(std::memory_order_relaxed);
  return s;
}

void InvestigationServer::worker_loop() {
  // Worker-local snapshot cache (see the header's snapshot discipline).
  index::DbSnapshot cached;
  bool has_cached = false;
  std::vector<Request> batch;

  for (;;) {
    batch.clear();
    {
      std::unique_lock lock(mutex_);
      if ((queued() == 0 || paused_) && has_cached) {
        // About to idle: drop the cached snapshot first so a parked
        // worker neither keeps evicted shards alive nor forces
        // copy-on-write on the ingest path. Released outside the lock —
        // shard destruction can be the expensive part.
        lock.unlock();
        cached = index::DbSnapshot{};
        has_cached = false;
        lock.lock();
      }
      // stopping_ overrides paused_ so a pause() racing stop() can never
      // strand queued requests (and stop() in workers' join).
      const auto idle_start = std::chrono::steady_clock::now();
      not_empty_.wait(lock, [this] {
        return (queued() != 0 && (!paused_ || stopping_)) ||
               (stopping_ && queued() == 0);
      });
      idle_us_c_->add(us_since(idle_start));
      if (queued() == 0) return;  // stopping, fully drained
      // Highest priority class first (kLive → kNormal → kBatch), FIFO
      // within a class; one batch may span classes when the hot class
      // runs dry mid-take.
      std::size_t take = std::min(cfg_.batch_max, queued());
      for (std::size_t cls = queues_.size(); cls-- > 0 && take > 0;) {
        auto& queue = queues_[cls];
        while (take > 0 && !queue.empty()) {
          batch.push_back(std::move(queue.front()));
          queue.pop_front();
          --take;
        }
      }
      queue_depth_g_->set(static_cast<std::int64_t>(queued()));
      batches_c_->add();
    }
    not_full_.notify_all();
    const auto busy_start = std::chrono::steady_clock::now();

    // One snapshot serves the batch; reuse the cached one when the
    // timeline write-version proves nothing changed since its cut.
    try {
      if (failpoint::any_armed() &&
          failpoint::evaluate("server.snapshot").fires())
        throw std::runtime_error("injected snapshot-acquisition failure");
      const auto& timeline = service_.database().timeline();
      if (!has_cached || !cfg_.reuse_unchanged_snapshot ||
          timeline.version() != cached.version()) {
        const auto pin_start = std::chrono::steady_clock::now();
        cached = service_.database().snapshot();
        has_cached = true;
        snapshots_c_->add();
        // The pin precedes the traced investigate() entry point; stash
        // its duration so the batch's first trace adopts it as a span.
        obs::stash_span("snapshot_pin", us_since(pin_start));
      }
    } catch (...) {
      // Snapshot acquisition failed (allocation): fail the whole batch.
      // Each request still records its latency and counts as failed —
      // without these a batch dying here was indistinguishable from
      // success in stats() and invisible in the latency histogram.
      const std::exception_ptr err = std::current_exception();
      for (auto& req : batch) {
        completed_c_->add();
        failed_c_->add();
        request_us_->record(us_since(busy_start));
        req.promise.set_exception(err);
      }
      busy_us_c_->add(us_since(busy_start));
      continue;
    }
    for (auto& req : batch) serve(cached, req);
    busy_us_c_->add(us_since(busy_start));
  }
}

void InvestigationServer::serve(const index::DbSnapshot& snap, Request& req) {
  // Stats commit BEFORE the promise resolves: a caller returning from
  // future::get() always observes this request in stats().completed.
  const auto start = std::chrono::steady_clock::now();
  if (start > req.deadline) {
    // Expired while queued: fail fast, don't burn a worker on it.
    completed_c_->add();
    expired_c_->add();
    request_us_->record(us_since(start));
    req.promise.set_exception(std::make_exception_ptr(DeadlineExpired{}));
    return;
  }
  try {
    Reports reports = service_.investigate_period(snap, req.site, req.begin, req.end);
    completed_c_->add();
    reports_c_->add(reports.size());
    request_us_->record(us_since(start));
    req.promise.set_value(std::move(reports));
  } catch (...) {
    completed_c_->add();
    failed_c_->add();
    request_us_->record(us_since(start));
    req.promise.set_exception(std::current_exception());
  }
}

}  // namespace viewmap::sys
