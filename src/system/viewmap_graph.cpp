#include "system/viewmap_graph.h"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

namespace viewmap::sys {

Viewmap::Viewmap(std::vector<const vp::ViewProfile*> members, std::vector<bool> trusted,
                 std::vector<std::vector<std::uint32_t>> adjacency, TimeSec unit_time,
                 geo::Rect coverage, std::shared_ptr<const index::TimeShard> pinned)
    : members_(std::move(members)),
      trusted_(std::move(trusted)),
      adjacency_(std::move(adjacency)),
      unit_time_(unit_time),
      coverage_(coverage),
      pinned_(std::move(pinned)) {
  if (members_.size() != trusted_.size() || members_.size() != adjacency_.size())
    throw std::invalid_argument("Viewmap: inconsistent member arrays");
}

std::size_t Viewmap::edge_count() const noexcept {
  std::size_t degree_sum = 0;
  for (const auto& n : adjacency_) degree_sum += n.size();
  return degree_sum / 2;
}

std::vector<std::size_t> Viewmap::trusted_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < trusted_.size(); ++i)
    if (trusted_[i]) out.push_back(i);
  return out;
}

std::vector<std::size_t> Viewmap::members_visiting(const geo::Rect& site) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < members_.size(); ++i)
    if (members_[i]->visits(site)) out.push_back(i);
  return out;
}

std::size_t Viewmap::isolated_from_trusted() const {
  // BFS from all trusted members simultaneously.
  std::vector<bool> reached(members_.size(), false);
  std::vector<std::size_t> frontier = trusted_indices();
  for (std::size_t i : frontier) reached[i] = true;
  while (!frontier.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t u : frontier)
      for (std::uint32_t v : adjacency_[u])
        if (!reached[v]) {
          reached[v] = true;
          next.push_back(v);
        }
    frontier = std::move(next);
  }
  return static_cast<std::size_t>(
      std::count(reached.begin(), reached.end(), false));
}

bool ViewmapBuilder::viewlinked(const vp::ViewProfile& a, const vp::ViewProfile& b) const {
  if (a.vp_id() == b.vp_id()) return false;
  if (!a.ever_within(b, cfg_.link_radius_m)) return false;
  return a.heard(b) && b.heard(a);  // two-way membership validation
}

Viewmap ViewmapBuilder::build(const index::DbSnapshot& snap, const geo::Rect& site,
                              TimeSec unit_time) const {
  const auto trusted = snap.trusted_at(unit_time);
  if (trusted.empty())
    throw std::runtime_error("ViewmapBuilder: no trusted VP for this unit-time");

  // Trusted VP closest to the investigation site (§5.2.1). Trusted cars
  // are rarely at the site itself; the coverage area bridges the gap.
  const geo::Vec2 site_center = site.center();
  const vp::ViewProfile* seed = nullptr;
  double best = std::numeric_limits<double>::infinity();
  for (const auto* t : trusted) {
    for (int s = 0; s < kDigestsPerProfile; ++s) {
      const double d = geo::distance(t->location_at(s), site_center);
      if (d < best) {
        best = d;
        seed = t;
      }
    }
  }

  // Coverage C: bounding box of the site and the seed's trajectory.
  geo::Rect cover = site;
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    const geo::Vec2 p = seed->location_at(s);
    cover.min.x = std::min(cover.min.x, p.x);
    cover.min.y = std::min(cover.min.y, p.y);
    cover.max.x = std::max(cover.max.x, p.x);
    cover.max.y = std::max(cover.max.y, p.y);
  }
  cover = cover.inflated(cfg_.coverage_margin_m);

  auto members = snap.query(unit_time, cover);
  // Everything in a viewmap shares one unit-time, so the minute's trusted
  // list (id-ordered) answers membership by binary search.
  const auto trusted_less = [](const vp::ViewProfile* a, const vp::ViewProfile* b) {
    return a->vp_id() < b->vp_id();
  };
  std::vector<bool> trusted_flags(members.size());
  for (std::size_t i = 0; i < members.size(); ++i)
    trusted_flags[i] =
        std::binary_search(trusted.begin(), trusted.end(), members[i], trusted_less);

  // The minute's shard rides inside the viewmap: member pointers stay
  // valid for the viewmap's lifetime, whatever ingest/eviction does
  // meanwhile — without keeping the snapshot's other shards alive.
  return build_from_members(std::move(members), std::move(trusted_flags), unit_time,
                            cover, snap.shard(unit_time));
}

Viewmap ViewmapBuilder::build_from_members(
    std::vector<const vp::ViewProfile*> members, std::vector<bool> trusted,
    TimeSec unit_time, const geo::Rect& coverage,
    std::shared_ptr<const index::TimeShard> pinned) const {
  const std::size_t n = members.size();
  std::vector<std::vector<std::uint32_t>> adj(n);

  // Spatial prefilter: trajectory bounding boxes inflated by the link
  // radius must overlap before the quadratic pair test runs.
  std::vector<geo::Rect> boxes(n);
  for (std::size_t i = 0; i < n; ++i) {
    geo::Rect box{members[i]->location_at(0), members[i]->location_at(0)};
    for (int s = 1; s < kDigestsPerProfile; ++s) {
      const geo::Vec2 p = members[i]->location_at(s);
      box.min.x = std::min(box.min.x, p.x);
      box.min.y = std::min(box.min.y, p.y);
      box.max.x = std::max(box.max.x, p.x);
      box.max.y = std::max(box.max.y, p.y);
    }
    boxes[i] = box.inflated(cfg_.link_radius_m / 2.0);
  }
  auto boxes_overlap = [](const geo::Rect& a, const geo::Rect& b) {
    return a.min.x <= b.max.x && b.min.x <= a.max.x && a.min.y <= b.max.y &&
           b.min.y <= a.max.y;
  };

  // Bloom probes per member VD, hashed once. The pairwise membership test
  // then reduces to bit lookups — this is what keeps city-scale viewmap
  // construction subsecond.
  using Probe = std::array<std::size_t, static_cast<std::size_t>(vp::kBloomHashes)>;
  std::vector<std::array<Probe, static_cast<std::size_t>(kDigestsPerProfile)>> probes(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto digests = members[i]->digests();
    for (std::size_t s = 0; s < digests.size(); ++s)
      bloom::BloomFilter::probe_positions(digests[s].serialize(), vp::kBloomBits,
                                          vp::kBloomHashes, probes[i][s]);
  }
  auto heard = [&](std::size_t listener, std::size_t speaker) {
    const auto& filter = members[listener]->neighbor_bloom();
    for (const Probe& p : probes[speaker])
      if (filter.test_positions(p)) return true;
    return false;
  };

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!boxes_overlap(boxes[i], boxes[j])) continue;
      if (!members[i]->ever_within(*members[j], cfg_.link_radius_m)) continue;
      if (heard(i, j) && heard(j, i)) {
        adj[i].push_back(static_cast<std::uint32_t>(j));
        adj[j].push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  return Viewmap(std::move(members), std::move(trusted), std::move(adj), unit_time,
                 coverage, std::move(pinned));
}

}  // namespace viewmap::sys
