#include "system/viewmap_graph.h"

#include <algorithm>
#include <exception>
#include <limits>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "index/spatial_grid.h"
#include "obs/trace.h"

namespace viewmap::sys {

Viewmap::Viewmap(std::vector<const vp::ViewProfile*> members, std::vector<bool> trusted,
                 CsrGraph graph, TimeSec unit_time, geo::Rect coverage,
                 std::shared_ptr<const index::TimeShard> pinned)
    : members_(std::move(members)),
      trusted_(std::move(trusted)),
      graph_(std::move(graph)),
      unit_time_(unit_time),
      coverage_(coverage),
      pinned_(std::move(pinned)) {
  if (members_.size() != trusted_.size() || members_.size() != graph_.size())
    throw std::invalid_argument("Viewmap: inconsistent member arrays");
}

std::span<const std::uint32_t> Viewmap::neighbors(std::size_t i) const {
  if (i >= graph_.size()) throw std::out_of_range("Viewmap::neighbors: bad index");
  return graph_.neighbors(i);
}

std::vector<std::size_t> Viewmap::trusted_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < trusted_.size(); ++i)
    if (trusted_[i]) out.push_back(i);
  return out;
}

std::vector<std::size_t> Viewmap::members_visiting(const geo::Rect& site) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < members_.size(); ++i)
    if (members_[i]->visits(site)) out.push_back(i);
  return out;
}

std::size_t Viewmap::isolated_from_trusted() const {
  // BFS from all trusted members simultaneously, over the flat CSR.
  std::vector<bool> reached(members_.size(), false);
  std::vector<std::size_t> frontier = trusted_indices();
  for (std::size_t i : frontier) reached[i] = true;
  while (!frontier.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t u : frontier)
      for (std::uint32_t v : graph_.neighbors(u))
        if (!reached[v]) {
          reached[v] = true;
          next.push_back(v);
        }
    frontier = std::move(next);
  }
  return static_cast<std::size_t>(
      std::count(reached.begin(), reached.end(), false));
}

bool ViewmapBuilder::viewlinked(const vp::ViewProfile& a, const vp::ViewProfile& b) const {
  if (a.vp_id() == b.vp_id()) return false;
  if (!a.ever_within(b, cfg_.link_radius_m)) return false;
  return a.heard(b) && b.heard(a);  // two-way membership validation
}

Viewmap ViewmapBuilder::build(const index::DbSnapshot& snap, const geo::Rect& site,
                              TimeSec unit_time) const {
  std::vector<const vp::ViewProfile*> members;
  std::vector<bool> trusted_flags;
  geo::Rect cover = site;
  {
    obs::SpanScope obs_span("member_select");
    const auto trusted = snap.trusted_at(unit_time);
    if (trusted.empty())
      throw std::runtime_error("ViewmapBuilder: no trusted VP for this unit-time");

    // Trusted VP closest to the investigation site (§5.2.1). Trusted cars
    // are rarely at the site itself; the coverage area bridges the gap.
    const geo::Vec2 site_center = site.center();
    const vp::ViewProfile* seed = nullptr;
    double best = std::numeric_limits<double>::infinity();
    for (const auto* t : trusted) {
      for (int s = 0; s < kDigestsPerProfile; ++s) {
        const double d = geo::distance(t->location_at(s), site_center);
        if (d < best) {
          best = d;
          seed = t;
        }
      }
    }

    // Coverage C: bounding box of the site and the seed's trajectory.
    for (int s = 0; s < kDigestsPerProfile; ++s) {
      const geo::Vec2 p = seed->location_at(s);
      cover.min.x = std::min(cover.min.x, p.x);
      cover.min.y = std::min(cover.min.y, p.y);
      cover.max.x = std::max(cover.max.x, p.x);
      cover.max.y = std::max(cover.max.y, p.y);
    }
    cover = cover.inflated(cfg_.coverage_margin_m);

    members = snap.query(unit_time, cover);
    // Everything in a viewmap shares one unit-time, so the minute's trusted
    // list (id-ordered) answers membership by binary search.
    const auto trusted_less = [](const vp::ViewProfile* a, const vp::ViewProfile* b) {
      return a->vp_id() < b->vp_id();
    };
    trusted_flags.resize(members.size());
    for (std::size_t i = 0; i < members.size(); ++i)
      trusted_flags[i] =
          std::binary_search(trusted.begin(), trusted.end(), members[i], trusted_less);
  }

  // The minute's shard rides inside the viewmap: member pointers stay
  // valid for the viewmap's lifetime, whatever ingest/eviction does
  // meanwhile — without keeping the snapshot's other shards alive.
  return build_from_members(std::move(members), std::move(trusted_flags), unit_time,
                            cover, snap.shard(unit_time));
}

namespace {

// ── the §5.2.1 edge predicate over a fixed member set ────────────────

/// Packed candidate pair, smaller index in the high half so a sorted
/// pair array is ordered by (i, j) — the order CSR assembly wants.
constexpr std::uint64_t pack_pair(std::uint32_t i, std::uint32_t j) noexcept {
  return static_cast<std::uint64_t>(i) << 32 | j;
}
constexpr std::uint32_t pair_lo(std::uint64_t key) noexcept {
  return static_cast<std::uint32_t>(key >> 32);
}
constexpr std::uint32_t pair_hi(std::uint64_t key) noexcept {
  return static_cast<std::uint32_t>(key);
}

/// Everything the per-pair test needs, boxed once per build. Bloom
/// probe positions live on the profiles themselves
/// (vp::ViewProfile::bloom_probes(), computed once per profile EVER,
/// not per build — repeated investigations over the same members hit a
/// warm table).
struct PairTester {
  std::span<const vp::ViewProfile* const> members;
  std::vector<geo::Rect> boxes;  ///< trajectory bboxes, inflated R/2
  double link_radius_m;

  PairTester(std::span<const vp::ViewProfile* const> m, double radius)
      : members(m), link_radius_m(radius) {
    const std::size_t n = members.size();
    boxes.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto digests = members[i]->digests();
      geo::Rect box{{digests[0].loc_x, digests[0].loc_y},
                    {digests[0].loc_x, digests[0].loc_y}};
      for (const auto& vd : digests) {
        box.min.x = std::min<double>(box.min.x, vd.loc_x);
        box.min.y = std::min<double>(box.min.y, vd.loc_y);
        box.max.x = std::max<double>(box.max.x, vd.loc_x);
        box.max.y = std::max<double>(box.max.y, vd.loc_y);
      }
      boxes[i] = box.inflated(link_radius_m / 2.0);
    }
  }

  [[nodiscard]] bool heard(std::size_t listener, std::size_t speaker) const {
    // One implementation of the one-way membership test: the profile's,
    // which already runs on the memoized probe tables.
    return members[listener]->heard(*members[speaker]);
  }

  /// The full viewlink predicate, cheapest-reject-first. Ordering was
  /// measured on the bench_index `viewmap_build` layouts: the bbox
  /// compare (~1 ns) kills far pairs; for the near pairs the grid
  /// feeds us, the one-way Bloom pass rejects unlinked candidates
  /// faster than the 60-second proximity scan does, so it runs second
  /// and the proximity scan only sees pairs that already share a
  /// filter hit (see src/system/README.md).
  [[nodiscard]] bool operator()(std::uint32_t i, std::uint32_t j) const {
    const geo::Rect& a = boxes[i];
    const geo::Rect& b = boxes[j];
    if (a.min.x > b.max.x || b.min.x > a.max.x || a.min.y > b.max.y ||
        b.min.y > a.max.y)
      return false;
    if (!heard(i, j)) return false;
    if (!members[i]->ever_within(*members[j], link_radius_m)) return false;
    return heard(j, i);
  }
};

// ── grid candidate generation ────────────────────────────────────────

/// Below this member count the all-pairs sweep beats grid setup.
constexpr std::size_t kGridMinMembers = 48;
/// Candidate-pair estimate below which one thread is always fastest.
constexpr std::size_t kParallelMinPairs = 2048;
/// Minimum candidate pairs a worker thread must have to be worth
/// spawning.
constexpr std::size_t kMinPairsPerThread = 4096;

/// Per-build uniform grid over member trajectories, pitch = link radius:
/// two members can only pass the time-aligned proximity test if AT THE
/// SAME WALL-CLOCK SECOND their cells coincide or are adjacent. Each
/// (member, cell) incidence therefore carries an occupancy mask with
/// bit (time mod 64) set for every second the member spends in that
/// cell — wall-clock, NOT digest index, because profiles in one shard
/// may start at offset seconds within the minute and ever_within()
/// aligns by VD timestamp. Aligned seconds always share a bit; times 64
/// apart collide onto the same bit, which only weakens the pruning
/// (the candidate set stays a superset). A cell-neighborhood pair whose
/// masks never overlap cannot link and is pruned by one AND before
/// anything else runs. Candidates are generated
/// anchor-style: member i scans the 3×3 neighborhoods of its own cells
/// and considers every j > i found there, with a per-thread stamp array
/// deduplicating js across contexts — so the (expensive) edge predicate
/// runs AT MOST ONCE per unordered pair, no matter how many cells a
/// pair shares, and memory stays O(n + edges).
struct CandidateGrid {
  struct Entry {
    std::uint32_t member = 0;
    std::uint64_t mask = 0;  ///< wall-clock seconds (mod 64) spent in the cell
  };

  std::vector<std::uint64_t> keys;           ///< packed cell coords
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  std::vector<Entry> entries;                 ///< flat, cell-grouped
  std::vector<std::uint32_t> cell_offsets;    ///< cell count + 1 into entries
  std::vector<std::uint32_t> member_cells;    ///< flat cell ids, member-grouped
  std::vector<std::uint64_t> member_masks;    ///< mask per member_cells entry
  std::vector<std::uint32_t> member_offsets;  ///< n+1 into member_cells
  std::vector<std::uint32_t> nbr_cells;       ///< flat 3×3 neighborhoods
  std::vector<std::uint32_t> nbr_offsets;     ///< cell count + 1 into nbr_cells
  std::vector<std::size_t> cell_scan;         ///< Σ|list| over a cell's 3×3

  CandidateGrid(std::span<const vp::ViewProfile* const> members, double cell_m) {
    const std::size_t n = members.size();
    index.reserve(n);
    member_offsets.reserve(n + 1);
    member_offsets.push_back(0);
    // A trajectory changes cells rarely (≤ ~18 touches a minute), so
    // per-member dedup is a linear probe of a short local list.
    std::uint64_t local_key[kDigestsPerProfile];
    std::uint64_t local_mask[kDigestsPerProfile];
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto digests = members[i]->digests();
      std::size_t touched = 0;
      for (int s = 0; s < kDigestsPerProfile; ++s) {
        const auto& vd = digests[static_cast<std::size_t>(s)];
        const std::uint64_t key =
            index::grid_pack_cell(index::grid_cell_coord(vd.loc_x, cell_m),
                                  index::grid_cell_coord(vd.loc_y, cell_m));
        std::size_t slot = 0;
        while (slot < touched && local_key[slot] != key) ++slot;
        if (slot == touched) {
          local_key[touched] = key;
          local_mask[touched] = 0;
          ++touched;
        }
        // Two's-complement cast keeps the mod-64 bit consistent across
        // profiles for negative timestamps too.
        local_mask[slot] |= std::uint64_t{1}
                            << (static_cast<std::uint64_t>(vd.time) & 63);
      }
      for (std::size_t k = 0; k < touched; ++k) {
        auto [it, fresh] =
            index.try_emplace(local_key[k], static_cast<std::uint32_t>(keys.size()));
        if (fresh) keys.push_back(local_key[k]);
        member_cells.push_back(it->second);
        member_masks.push_back(local_mask[k]);
      }
      member_offsets.push_back(static_cast<std::uint32_t>(member_cells.size()));
    }

    // Lay the per-cell member lists out flat (counting sort over the
    // incidences): the scan below streams each list from one contiguous
    // block instead of chasing a heap vector per cell.
    const std::size_t cell_count = keys.size();
    cell_offsets.assign(cell_count + 1, 0);
    for (const std::uint32_t c : member_cells) ++cell_offsets[c + 1];
    for (std::size_t c = 0; c < cell_count; ++c) cell_offsets[c + 1] += cell_offsets[c];
    entries.resize(member_cells.size());
    {
      std::vector<std::uint32_t> cursor(cell_offsets.begin(), cell_offsets.end() - 1);
      for (std::uint32_t i = 0; i < n; ++i)
        for (std::uint32_t k = member_offsets[i]; k < member_offsets[i + 1]; ++k)
          entries[cursor[member_cells[k]]++] = {i, member_masks[k]};
    }

    // Resolve every cell's 3×3 neighborhood (self included) once; the
    // anchor scan then never touches the hash map.
    nbr_offsets.reserve(cell_count + 1);
    nbr_offsets.push_back(0);
    cell_scan.resize(cell_count);
    for (std::size_t c = 0; c < cell_count; ++c) {
      std::size_t scan = 0;
      for (int dx = -1; dx <= 1; ++dx)
        for (int dy = -1; dy <= 1; ++dy) {
          const std::int64_t nx =
              static_cast<std::int64_t>(index::grid_cell_x(keys[c])) + dx;
          const std::int64_t ny =
              static_cast<std::int64_t>(index::grid_cell_y(keys[c])) + dy;
          if (nx < std::numeric_limits<std::int32_t>::min() ||
              nx > std::numeric_limits<std::int32_t>::max() ||
              ny < std::numeric_limits<std::int32_t>::min() ||
              ny > std::numeric_limits<std::int32_t>::max())
            continue;
          const auto it = index.find(index::grid_pack_cell(
              static_cast<std::int32_t>(nx), static_cast<std::int32_t>(ny)));
          if (it == index.end()) continue;
          nbr_cells.push_back(it->second);
          scan += cell_offsets[it->second + 1] - cell_offsets[it->second];
        }
      nbr_offsets.push_back(static_cast<std::uint32_t>(nbr_cells.size()));
      cell_scan[c] = scan;
    }
  }

  /// Stamp checks anchor i will perform — the balance/estimate metric.
  [[nodiscard]] std::size_t anchor_work(std::uint32_t i) const {
    std::size_t work = 0;
    for (std::uint32_t k = member_offsets[i]; k < member_offsets[i + 1]; ++k)
      work += cell_scan[member_cells[k]];
    return work;
  }

  /// Runs the tester once per unordered candidate pair with anchor in
  /// [lo, hi), appending passing pairs to `out` (anchor ascending;
  /// `stamp` is the caller's n-entry scratch, zero-initialized once).
  /// A pair is only considered in a context where the two occupancy
  /// masks share a second; a context pruned by the mask does NOT stamp,
  /// so a later context with temporal overlap still gets to test.
  void test_anchors(const PairTester& test, std::uint32_t lo, std::uint32_t hi,
                    std::vector<std::uint32_t>& stamp,
                    std::vector<std::uint64_t>& out) const {
    for (std::uint32_t i = lo; i < hi; ++i) {
      const std::uint32_t tag = i + 1;  // 0 = never seen
      for (std::uint32_t k = member_offsets[i]; k < member_offsets[i + 1]; ++k) {
        const std::uint32_t c = member_cells[k];
        const std::uint64_t own_mask = member_masks[k];
        for (std::uint32_t a = nbr_offsets[c]; a < nbr_offsets[c + 1]; ++a) {
          const std::uint32_t cc = nbr_cells[a];
          // Lists are member-ascending: skip the j ≤ i prefix wholesale.
          const auto* first = entries.data() + cell_offsets[cc];
          const auto* last = entries.data() + cell_offsets[cc + 1];
          const auto* ent = std::upper_bound(
              first, last, i,
              [](std::uint32_t v, const Entry& e) { return v < e.member; });
          for (; ent != last; ++ent) {
            if ((own_mask & ent->mask) == 0 || stamp[ent->member] == tag) continue;
            stamp[ent->member] = tag;
            if (test(i, ent->member)) out.push_back(pack_pair(i, ent->member));
          }
        }
      }
    }
  }
};

std::size_t resolve_build_threads(std::size_t configured) {
  if (configured != 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, 4);
}

/// Contiguous range boundaries over `work.size()` items, balanced so
/// each of the `threads` ranges carries ≈ total/threads of the work.
std::vector<std::size_t> balanced_bounds(std::span<const std::size_t> work,
                                         std::size_t total, std::size_t threads) {
  std::vector<std::size_t> bounds{0};
  std::size_t acc = 0;
  for (std::size_t c = 0; c < work.size() && bounds.size() < threads; ++c) {
    acc += work[c];
    if (acc * threads >= total * bounds.size()) bounds.push_back(c + 1);
  }
  while (bounds.size() <= threads) bounds.push_back(work.size());
  return bounds;
}

/// CSR assembly from the accepted pair list (sorted, unique, smaller id
/// high): count degrees, prefix-sum, then two fill passes — smaller-side
/// neighbors first, larger-side second — so every neighbor list comes
/// out ascending without a per-node sort.
CsrGraph csr_from_sorted_pairs(std::size_t n, std::span<const std::uint64_t> pairs) {
  std::vector<std::size_t> offsets(n + 1, 0);
  for (const std::uint64_t key : pairs) {
    ++offsets[pair_lo(key) + 1];
    ++offsets[pair_hi(key) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];
  std::vector<std::uint32_t> edges(pairs.size() * 2);
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const std::uint64_t key : pairs) edges[cursor[pair_hi(key)]++] = pair_lo(key);
  for (const std::uint64_t key : pairs) edges[cursor[pair_lo(key)]++] = pair_hi(key);
  return CsrGraph(std::move(offsets), std::move(edges));
}

}  // namespace

std::size_t ViewmapBuilder::resolved_build_threads(std::size_t configured) {
  return resolve_build_threads(configured);
}

Viewmap ViewmapBuilder::build_from_members(
    std::vector<const vp::ViewProfile*> members, std::vector<bool> trusted,
    TimeSec unit_time, const geo::Rect& coverage,
    std::shared_ptr<const index::TimeShard> pinned) const {
  const std::size_t n = members.size();
  if (n > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("ViewmapBuilder: too many members");
  const PairTester test(members, cfg_.link_radius_m);

  std::vector<std::uint64_t> accepted;
  if (n < kGridMinMembers) {
    // Grid setup costs more than it saves on tiny member sets.
    obs::SpanScope obs_span("edge_build");
    for (std::uint32_t i = 0; i < n; ++i)
      for (std::uint32_t j = i + 1; j < n; ++j)
        if (test(i, j)) accepted.push_back(pack_pair(i, j));
  } else {
    const CandidateGrid grid = [&] {
      obs::SpanScope obs_span("candidate_grid");
      return CandidateGrid(members, std::max(cfg_.link_radius_m, 1.0));
    }();
    obs::SpanScope obs_span("edge_build");
    std::vector<std::size_t> work(n);
    std::size_t total_work = 0;
    for (std::uint32_t i = 0; i < n; ++i)
      total_work += work[i] = grid.anchor_work(i);

    // When every member piles into a handful of cells (one dense block,
    // a saturated site), the neighborhood scan would visit more
    // incidences than the plain sweep visits pairs — fall back to the
    // duplication-free all-pairs sweep, still sharded across threads.
    const std::size_t all_pairs = n * (n - 1) / 2;
    const bool degenerate = total_work >= all_pairs;
    if (degenerate)
      for (std::uint32_t i = 0; i < n; ++i) work[i] = n - 1 - i;
    const std::size_t budget = degenerate ? all_pairs : total_work;

    const auto run = [&](std::size_t lo, std::size_t hi,
                         std::vector<std::uint64_t>& out) {
      if (degenerate) {
        for (auto i = static_cast<std::uint32_t>(lo); i < hi; ++i)
          for (auto j = i + 1; j < n; ++j)
            if (test(i, j)) out.push_back(pack_pair(i, j));
      } else {
        std::vector<std::uint32_t> stamp(n, 0);
        grid.test_anchors(test, static_cast<std::uint32_t>(lo),
                          static_cast<std::uint32_t>(hi), stamp, out);
      }
    };

    const std::size_t threads =
        std::min(resolve_build_threads(cfg_.build_threads),
                 budget / kMinPairsPerThread + 1);
    if (threads <= 1 || budget < kParallelMinPairs) {
      run(0, n, accepted);
    } else {
      // Shard the candidate stream: contiguous anchor ranges balanced
      // by scan work, one edge buffer per thread, concatenated after
      // the join (the final sort makes merge order irrelevant).
      const auto bounds = balanced_bounds(work, budget, threads);
      std::vector<std::vector<std::uint64_t>> partial(threads);
      std::vector<std::exception_ptr> errors(threads);
      std::vector<std::thread> pool;
      pool.reserve(threads - 1);
      const auto guarded = [&](std::size_t t) {
        try {
          run(bounds[t], bounds[t + 1], partial[t]);
        } catch (...) {
          errors[t] = std::current_exception();
        }
      };
      for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(guarded, t);
      guarded(0);
      for (auto& th : pool) th.join();
      for (const auto& err : errors)
        if (err) std::rethrow_exception(err);

      std::size_t total = 0;
      for (const auto& p : partial) total += p.size();
      accepted.reserve(total);
      for (const auto& p : partial)
        accepted.insert(accepted.end(), p.begin(), p.end());
    }
    // The stamp/sweep discipline yields each pair at most once; only
    // the per-anchor discovery order is loose. Sort for CSR assembly.
    std::sort(accepted.begin(), accepted.end());
  }

  CsrGraph graph = [&] {
    obs::SpanScope obs_span("csr_build");
    return csr_from_sorted_pairs(n, accepted);
  }();
  return Viewmap(std::move(members), std::move(trusted), std::move(graph),
                 unit_time, coverage, std::move(pinned));
}

Viewmap ViewmapBuilder::build_from_members_reference(
    std::vector<const vp::ViewProfile*> members, std::vector<bool> trusted,
    TimeSec unit_time, const geo::Rect& coverage,
    std::shared_ptr<const index::TimeShard> pinned) const {
  // The pre-grid algorithm, verbatim: every O(n²) pair, same predicate.
  const std::size_t n = members.size();
  if (n > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("ViewmapBuilder: too many members");
  const PairTester test(members, cfg_.link_radius_m);
  std::vector<std::uint64_t> accepted;
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = i + 1; j < n; ++j)
      if (test(i, j)) accepted.push_back(pack_pair(i, j));
  return Viewmap(std::move(members), std::move(trusted),
                 csr_from_sorted_pairs(n, accepted), unit_time, coverage,
                 std::move(pinned));
}

}  // namespace viewmap::sys
