// Notice board for video solicitation and reward posting (§5.2.3, §5.3).
//
// Owners are unknown, so the system communicates with them by posting VP
// identifiers: "request for video" after verification, "request for
// reward" after human review. Users poll the board anonymously; a posted
// R value matching a VP in their storage triggers an upload/claim. The
// board never carries the investigation's location or time (§4: solicit
// "without publicizing location/time of the investigation").
#pragma once

#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "crypto/hash_chain.h"
#include "vp/video.h"
#include "vp/view_profile.h"

namespace viewmap::sys {

enum class RequestKind { kVideo, kReward };

/// Concurrency contract: every method is thread-safe and linearizable —
/// one internal mutex serializes them, so N investigation-server workers
/// post solicitations while users poll and the video path withdraws, with
/// no lost or duplicated notices. post() is idempotent (re-posting an
/// already-posted id is a no-op by construction: the entry is a flag, not
/// a count), withdraw() of an absent id is a no-op, and posted() returns
/// a consistent cut of the board as of some instant during the call.
/// Hot-path cost is one uncontended lock around one hash probe; the board
/// is not an ingest-rate structure (it grows with solicitations, not
/// uploads), so a finer scheme would buy nothing measurable.
class NoticeBoard {
 public:
  void post(const Id16& vp_id, RequestKind kind);
  void withdraw(const Id16& vp_id, RequestKind kind);
  [[nodiscard]] bool is_posted(const Id16& vp_id, RequestKind kind) const;
  [[nodiscard]] std::vector<Id16> posted(RequestKind kind) const;

 private:
  struct Entry {
    bool video = false;
    bool reward = false;
  };
  mutable std::mutex mutex_;  ///< guards entries_ (see class comment)
  std::unordered_map<Id16, Entry, Id16Hasher> entries_;
};

/// §5.2.3 video validation: replay the cascaded hash chain of an uploaded
/// video against the system-owned VP. The chunk boundaries come from the
/// VP's own cumulative file-size fields, so a forged video must reproduce
/// all sixty 128-bit hash values to pass.
[[nodiscard]] bool validate_solicited_video(const vp::ViewProfile& profile,
                                            const vp::RecordedVideo& video);

}  // namespace viewmap::sys
