#include "system/vp_database.h"

namespace viewmap::sys {

bool VpDatabase::upload(vp::ViewProfile profile) {
  if (!policy_.well_formed(profile)) return false;
  // Anonymous claims outside the plausible window around the trusted
  // clock never enter a shard (and never influence retention).
  if (!timeline_.admissible(profile.unit_time())) return false;
  return timeline_.insert(std::move(profile), /*trusted=*/false);
}

bool VpDatabase::upload_trusted(vp::ViewProfile profile) {
  if (!policy_.well_formed(profile)) return false;
  return timeline_.insert(std::move(profile), /*trusted=*/true);
}

bool VpDatabase::restore(vp::ViewProfile profile, bool trusted) {
  if (!policy_.well_formed(profile)) return false;
  return timeline_.insert(std::move(profile), trusted);
}

const vp::ViewProfile* VpDatabase::find(const Id16& vp_id) const noexcept {
  return timeline_.find(vp_id);
}

bool VpDatabase::is_trusted(const Id16& vp_id) const noexcept {
  return timeline_.is_trusted(vp_id);
}

std::vector<const vp::ViewProfile*> VpDatabase::query(TimeSec unit_time,
                                                      const geo::Rect& area) const {
  return timeline_.query(unit_time, area);
}

std::vector<const vp::ViewProfile*> VpDatabase::trusted_at(TimeSec unit_time) const {
  return timeline_.trusted_at(unit_time);
}

std::vector<const vp::ViewProfile*> VpDatabase::all() const { return timeline_.all(); }

std::vector<Id16> VpDatabase::trusted_ids() const { return timeline_.trusted_ids(); }

}  // namespace viewmap::sys
