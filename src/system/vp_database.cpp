#include "system/vp_database.h"

namespace viewmap::sys {

bool VpDatabase::upload(vp::ViewProfile profile) {
  if (!policy_.well_formed(profile)) return false;
  // Anonymous claims outside the plausible window around the trusted
  // clock never enter a shard (and never influence retention).
  if (!timeline_.admissible(profile.unit_time())) return false;
  return timeline_.insert(std::move(profile), /*trusted=*/false);
}

bool VpDatabase::upload_trusted(vp::ViewProfile profile) {
  if (!policy_.well_formed(profile)) return false;
  return timeline_.insert(std::move(profile), /*trusted=*/true);
}

bool VpDatabase::restore(vp::ViewProfile profile, bool trusted) {
  if (!policy_.well_formed(profile)) return false;
  return timeline_.insert(std::move(profile), trusted);
}

bool VpDatabase::is_trusted(const Id16& vp_id) const noexcept {
  return timeline_.is_trusted(vp_id);
}

}  // namespace viewmap::sys
