#include "system/vp_database.h"

namespace viewmap::sys {

bool VpDatabase::upload(vp::ViewProfile profile) { return insert(std::move(profile), false); }

bool VpDatabase::upload_trusted(vp::ViewProfile profile) {
  return insert(std::move(profile), true);
}

bool VpDatabase::insert(vp::ViewProfile profile, bool trusted) {
  if (!policy_.well_formed(profile)) return false;
  const Id16 id = profile.vp_id();
  if (profiles_.contains(id)) return false;
  profiles_.emplace(id, std::move(profile));
  if (trusted) trusted_.emplace(id, true);
  return true;
}

const vp::ViewProfile* VpDatabase::find(const Id16& vp_id) const noexcept {
  auto it = profiles_.find(vp_id);
  return it == profiles_.end() ? nullptr : &it->second;
}

bool VpDatabase::is_trusted(const Id16& vp_id) const noexcept {
  return trusted_.contains(vp_id);
}

std::vector<const vp::ViewProfile*> VpDatabase::query(TimeSec unit_time,
                                                      const geo::Rect& area) const {
  std::vector<const vp::ViewProfile*> out;
  for (const auto& [id, profile] : profiles_)
    if (profile.unit_time() == unit_time && profile.visits(area))
      out.push_back(&profile);
  return out;
}

std::vector<const vp::ViewProfile*> VpDatabase::trusted_at(TimeSec unit_time) const {
  std::vector<const vp::ViewProfile*> out;
  for (const auto& [id, flag] : trusted_) {
    const auto* profile = find(id);
    if (profile != nullptr && profile->unit_time() == unit_time) out.push_back(profile);
  }
  return out;
}

std::vector<const vp::ViewProfile*> VpDatabase::all() const {
  std::vector<const vp::ViewProfile*> out;
  out.reserve(profiles_.size());
  for (const auto& [id, profile] : profiles_) out.push_back(&profile);
  return out;
}

std::vector<Id16> VpDatabase::trusted_ids() const {
  std::vector<Id16> out;
  out.reserve(trusted_.size());
  for (const auto& [id, flag] : trusted_) out.push_back(id);
  return out;
}

}  // namespace viewmap::sys
